//===- bench_service.cpp - What verification-as-a-service buys ------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Prices the cobaltd service model (DESIGN.md §13) on the standard
/// 21-definition suite, with `checker.prover_stall_ms` modeling real
/// multi-second prover queries (the suite's actual Z3 queries discharge
/// in microseconds):
///
///  1. **Cold single-shot baseline** — one CobaltService::check() over
///     the whole suite with an empty cache: what a from-scratch cobaltc
///     invocation pays. Every warm number is quoted against this.
///
///  2. **Dedup under concurrency** — a fresh (cold) service behind an
///     in-process Daemon, 4 concurrent clients all requesting the full
///     suite at once. The responses must be byte-identical, and the
///     obligation counters must show the suite proven exactly *once*
///     (the first requester leads, the rest await the shared future).
///
///  3. **Warm mixed throughput** — 1k and 10k mixed requests (pings,
///     stats, single-definition checks, full-suite checks) from 4
///     concurrent clients against the now-warm daemon: requests/s,
///     p50/p99 latency, cache hit rate.
///
/// Gates (exit nonzero on failure, enforced by `ctest -L benchgate`):
///   - warm full-suite check p50 < 5% of the cold single-shot latency
///   - dedup: byte-identical responses, suite proven exactly once
///
/// Emits BENCH_service.json next to the human-readable table. `--quick`
/// shortens the stall and drops the 10k row for smoke runs (gates still
/// enforced).
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Protocol.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cobalt;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct BenchConfig {
  int StallMs = 5;
  bool Quick = false;
};

/// The standard suite as a service: every label, analysis, and
/// optimization the opts library defines (21 definitions).
std::shared_ptr<api::CobaltService> buildService() {
  api::CobaltConfig Config;
  Config.Jobs = 1;
  Config.Telemetry = true; // counters drive the dedup assertions
  api::CobaltService::Builder B;
  B.config(Config);
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  for (const PureAnalysis &A : opts::allAnalyses())
    B.addAnalysis(A);
  for (const Optimization &O : opts::allOptimizations())
    B.addOptimization(O);
  return B.build();
}

void stallProver(int StallMs) {
  support::FaultInjector::instance().configure(
      std::string(support::faults::CheckerProverStallMs) + "=" +
      std::to_string(StallMs));
}

/// Reads a counter out of a stats response ("metrics" > "counters").
uint64_t statsCounter(const service::JsonValue &Doc, const char *Name) {
  const service::JsonValue *Metrics = Doc.find("metrics");
  const service::JsonValue *Counters =
      Metrics ? Metrics->find("counters") : nullptr;
  const service::JsonValue *C = Counters ? Counters->find(Name) : nullptr;
  return C ? C->asU64() : 0;
}

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

//===----------------------------------------------------------------------===//
// Phase 1: cold single-shot baseline.
//===----------------------------------------------------------------------===//

struct ColdRun {
  double Seconds = 0.0;
  unsigned Definitions = 0;
  unsigned Obligations = 0;
  bool AllSound = false;
};

ColdRun runColdBaseline(const BenchConfig &BC) {
  std::shared_ptr<api::CobaltService> Svc = buildService();
  stallProver(BC.StallMs);
  ColdRun Run;
  auto Start = std::chrono::steady_clock::now();
  api::CheckResponse Resp = Svc->check(api::CheckRequest{});
  Run.Seconds = secondsSince(Start);
  support::FaultInjector::instance().reset();
  Run.Definitions = static_cast<unsigned>(Resp.Suite.Reports.size());
  for (const checker::CheckReport &R : Resp.Suite.Reports)
    Run.Obligations += static_cast<unsigned>(R.Obligations.size());
  Run.AllSound = Resp.ok() && Resp.Suite.allSound();
  return Run;
}

//===----------------------------------------------------------------------===//
// Phase 2: obligation dedup across concurrent clients.
//===----------------------------------------------------------------------===//

struct DedupRun {
  double Seconds = 0.0;       ///< Wall for all 4 full-suite requests.
  bool ByteIdentical = false; ///< All 4 responses identical.
  bool ProvedOnce = false;    ///< checker.obligations == suite size.
  uint64_t ObligationsProved = 0;
  uint64_t DedupServed = 0; ///< Definitions served from the memo.
};

DedupRun runDedup(service::Daemon &D, const BenchConfig &BC,
                  unsigned Clients, unsigned SuiteObligations) {
  stallProver(BC.StallMs);
  std::vector<std::string> Responses(Clients);
  std::vector<std::thread> Threads;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      service::Client C;
      if (C.connect(D.socketPath()).failed())
        return;
      support::Expected<std::string> R =
          C.request(service::makeCheckRequest({}), /*DeadlineMs=*/0);
      if (R)
        Responses[I] = std::move(*R);
    });
  for (std::thread &T : Threads)
    T.join();
  DedupRun Run;
  Run.Seconds = secondsSince(Start);
  support::FaultInjector::instance().reset();

  Run.ByteIdentical = !Responses[0].empty();
  for (unsigned I = 1; I < Clients; ++I)
    Run.ByteIdentical = Run.ByteIdentical && Responses[I] == Responses[0];

  service::Client C;
  if (!C.connect(D.socketPath()).failed()) {
    support::Expected<std::string> R =
        C.request(service::makeStatsRequest(), /*DeadlineMs=*/0);
    if (R) {
      if (std::optional<service::JsonValue> Doc = service::parseJson(*R)) {
        Run.ObligationsProved = statsCounter(*Doc, "checker.obligations");
        Run.DedupServed = statsCounter(*Doc, "service.dedup.served");
      }
    }
  }
  // With telemetry compiled out the counters cannot testify; the
  // byte-identity check still holds and the gate degrades to that.
  Run.ProvedOnce = !support::telemetryCompiledIn() ||
                   Run.ObligationsProved == SuiteObligations;
  return Run;
}

//===----------------------------------------------------------------------===//
// Phase 3: warm mixed throughput.
//===----------------------------------------------------------------------===//

struct WarmRun {
  unsigned Requests = 0;
  double Seconds = 0.0;
  double RequestsPerSecond = 0.0;
  double P50 = 0.0, P99 = 0.0;   ///< All requests.
  double FullCheckP50 = 0.0;     ///< Full-suite checks only (the gate).
  double HitRate = 0.0;          ///< Served definitions / requested.
};

WarmRun runWarmMixed(service::Daemon &D, unsigned Clients,
                     unsigned Requests,
                     const std::vector<std::string> &Names,
                     uint64_t &CacheHitsBefore) {
  std::vector<std::vector<double>> All(Clients), Full(Clients);
  std::vector<uint64_t> Lookups(Clients, 0);
  std::vector<std::thread> Threads;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned T = 0; T < Clients; ++T)
    Threads.emplace_back([&, T] {
      service::Client C;
      if (C.connect(D.socketPath()).failed())
        return;
      for (unsigned I = T; I < Requests; I += Clients) {
        // Mix: 10% pings, 10% stats, 60% single-definition checks,
        // 20% full-suite checks.
        std::string Req;
        bool IsFull = false;
        switch (I % 10) {
        case 0:
          Req = service::makePingRequest();
          break;
        case 1:
          Req = service::makeStatsRequest();
          break;
        case 8:
        case 9:
          Req = service::makeCheckRequest({});
          IsFull = true;
          Lookups[T] += Names.size();
          break;
        default:
          Req = service::makeCheckRequest({Names[I % Names.size()]});
          Lookups[T] += 1;
          break;
        }
        auto R0 = std::chrono::steady_clock::now();
        support::Expected<std::string> R = C.request(Req, /*Deadline*/ 0);
        double S = secondsSince(R0);
        if (!R)
          return;
        All[T].push_back(S);
        if (IsFull)
          Full[T].push_back(S);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  WarmRun Run;
  Run.Requests = Requests;
  Run.Seconds = secondsSince(Start);
  Run.RequestsPerSecond =
      Run.Seconds > 0.0 ? static_cast<double>(Requests) / Run.Seconds : 0.0;

  std::vector<double> AllFlat, FullFlat;
  uint64_t TotalLookups = 0;
  for (unsigned T = 0; T < Clients; ++T) {
    AllFlat.insert(AllFlat.end(), All[T].begin(), All[T].end());
    FullFlat.insert(FullFlat.end(), Full[T].begin(), Full[T].end());
    TotalLookups += Lookups[T];
  }
  std::sort(AllFlat.begin(), AllFlat.end());
  std::sort(FullFlat.begin(), FullFlat.end());
  Run.P50 = percentile(AllFlat, 0.50);
  Run.P99 = percentile(AllFlat, 0.99);
  Run.FullCheckP50 = percentile(FullFlat, 0.50);

  service::Client C;
  if (!C.connect(D.socketPath()).failed()) {
    support::Expected<std::string> R =
        C.request(service::makeStatsRequest(), /*DeadlineMs=*/0);
    if (R) {
      if (std::optional<service::JsonValue> Doc = service::parseJson(*R)) {
        const service::JsonValue *Hits = Doc->find("cache_hits");
        uint64_t Now = Hits ? Hits->asU64() : 0;
        if (TotalLookups > 0 && Now >= CacheHitsBefore)
          Run.HitRate = static_cast<double>(Now - CacheHitsBefore) /
                        static_cast<double>(TotalLookups);
        CacheHitsBefore = Now;
      }
    }
  }
  return Run;
}

uint64_t queryCacheHits(service::Daemon &D) {
  service::Client C;
  if (C.connect(D.socketPath()).failed())
    return 0;
  support::Expected<std::string> R =
      C.request(service::makeStatsRequest(), /*DeadlineMs=*/0);
  if (!R)
    return 0;
  std::optional<service::JsonValue> Doc = service::parseJson(*R);
  if (!Doc)
    return 0;
  const service::JsonValue *Hits = Doc->find("cache_hits");
  return Hits ? Hits->asU64() : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig BC;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0) {
      BC.Quick = true;
      BC.StallMs = 2;
    } else if (std::strcmp(Argv[I], "--stall") == 0 && I + 1 < Argc) {
      BC.StallMs = std::atoi(Argv[++I]);
    } else {
      std::fprintf(stderr, "usage: bench_service [--quick] [--stall ms]\n");
      return 2;
    }
  }
  constexpr unsigned Clients = 4;

  std::printf("service: cobaltd vs single-shot on the standard suite "
              "(stall %d ms, %u clients)\n\n",
              BC.StallMs, Clients);

  // Phase 1: the cold baseline every warm number is quoted against.
  ColdRun Cold = runColdBaseline(BC);
  std::printf("  cold single-shot   %u definitions, %u obligations, "
              "%.3f s%s\n",
              Cold.Definitions, Cold.Obligations, Cold.Seconds,
              Cold.AllSound ? "" : "  [UNEXPECTED: not all sound]");

  // Phases 2+3 share one daemon: dedup runs it cold, the mixed load
  // runs it warm.
  std::shared_ptr<api::CobaltService> Svc = buildService();
  std::string Socket =
      "/tmp/cobalt_bench_service_" + std::to_string(getpid()) + ".sock";
  service::Daemon D(Svc, Socket);
  if (support::Error E = D.start(); E.failed()) {
    std::fprintf(stderr, "bench_service: %s\n", E.str().c_str());
    return 2;
  }

  DedupRun Dedup = runDedup(D, BC, Clients, Cold.Obligations);
  std::printf("  dedup (4x cold)    %.3f s wall, responses %s, "
              "%llu obligation(s) proved (suite: %u), %llu served "
              "from memo\n",
              Dedup.Seconds,
              Dedup.ByteIdentical ? "byte-identical" : "DIVERGENT",
              static_cast<unsigned long long>(Dedup.ObligationsProved),
              Cold.Obligations,
              static_cast<unsigned long long>(Dedup.DedupServed));

  std::vector<std::string> Names;
  for (const PureAnalysis &A : Svc->analyses())
    Names.push_back(A.Name);
  for (const Optimization &O : Svc->optimizations())
    Names.push_back(O.Name);

  std::vector<WarmRun> Warm;
  uint64_t HitsCursor = queryCacheHits(D);
  std::vector<unsigned> Rows =
      BC.Quick ? std::vector<unsigned>{200}
               : std::vector<unsigned>{1000, 10000};
  for (unsigned N : Rows) {
    WarmRun W = runWarmMixed(D, Clients, N, Names, HitsCursor);
    Warm.push_back(W);
    std::printf("  warm %-6u mixed  %.3f s, %.0f req/s, p50 %.3f ms, "
                "p99 %.3f ms, full-check p50 %.3f ms, hit rate %.3f\n",
                W.Requests, W.Seconds, W.RequestsPerSecond, W.P50 * 1e3,
                W.P99 * 1e3, W.FullCheckP50 * 1e3, W.HitRate);
  }
  D.stop();

  // Gates.
  const WarmRun &Last = Warm.back();
  double WarmRatio =
      Cold.Seconds > 0.0 ? Last.FullCheckP50 / Cold.Seconds : 1.0;
  constexpr double WarmRatioMax = 0.05;
  bool GateWarm = WarmRatio < WarmRatioMax;
  bool GateDedup = Dedup.ByteIdentical && Dedup.ProvedOnce;
  bool Pass = Cold.AllSound && GateWarm && GateDedup;

  std::printf("\n  gates: warm full-check p50 / cold = %.4f (max %.2f) "
              "%s; dedup %s\n",
              WarmRatio, WarmRatioMax, GateWarm ? "PASS" : "FAIL",
              GateDedup ? "PASS" : "FAIL");

  std::string J = "{\n  \"benchmark\": \"service\",\n";
  J += "  \"stall_ms\": " + std::to_string(BC.StallMs) + ",\n";
  J += "  \"clients\": " + std::to_string(Clients) + ",\n";
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "  \"cold\": {\"definitions\": %u, \"obligations\": %u, "
                "\"wall_seconds\": %.3f},\n",
                Cold.Definitions, Cold.Obligations, Cold.Seconds);
  J += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "  \"dedup\": {\"wall_seconds\": %.3f, \"byte_identical\": %s, "
      "\"obligations_proved\": %llu, \"memo_served\": %llu},\n",
      Dedup.Seconds, Dedup.ByteIdentical ? "true" : "false",
      static_cast<unsigned long long>(Dedup.ObligationsProved),
      static_cast<unsigned long long>(Dedup.DedupServed));
  J += Buf;
  J += "  \"warm\": [\n";
  for (size_t I = 0; I < Warm.size(); ++I) {
    const WarmRun &W = Warm[I];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"requests\": %u, \"wall_seconds\": %.3f, "
                  "\"requests_per_second\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"full_check_p50_ms\": %.3f, "
                  "\"hit_rate\": %.3f}%s\n",
                  W.Requests, W.Seconds, W.RequestsPerSecond, W.P50 * 1e3,
                  W.P99 * 1e3, W.FullCheckP50 * 1e3, W.HitRate,
                  I + 1 < Warm.size() ? "," : "");
    J += Buf;
  }
  J += "  ],\n";
  std::snprintf(Buf, sizeof(Buf),
                "  \"gates\": {\"warm_ratio_max\": %.2f, \"warm_ratio\": "
                "%.4f, \"dedup\": %s, \"pass\": %s}\n}\n",
                WarmRatioMax, WarmRatio, GateDedup ? "true" : "false",
                Pass ? "true" : "false");
  J += Buf;

  std::FILE *F = std::fopen("BENCH_service.json", "wb");
  if (F) {
    std::fwrite(J.data(), 1, J.size(), F);
    std::fclose(F);
  }
  std::printf("\n%s", J.c_str());
  if (!Pass) {
    std::fprintf(stderr, "bench_service: GATE FAILURE\n");
    return 1;
  }
  return 0;
}
