//===- cobaltc.cpp - The Cobalt checker/compiler driver -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver tying the whole system together:
///
///   cobaltc check  <module.cob>                 prove every definition
///   cobaltc run    <module.cob> <program.il> N  check, then optimize and
///                                               run main(N) before/after
///   cobaltc stdlib                              print the bundled module
///
/// `check` exits nonzero if any definition fails its soundness proof,
/// printing the failing obligations and counterexample contexts. `run`
/// refuses to apply unproven optimizations — the extensible-compiler
/// discipline of paper §1/§6.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "core/CobaltParser.h"
#include "engine/PassManager.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/StdlibCobalt.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace cobalt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cobaltc check <module.cob>\n"
               "       cobaltc run <module.cob> <program.il> [input]\n"
               "       cobaltc stdlib\n");
  return 2;
}

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Parses a module, falling back to the bundled stdlib for the special
/// path "stdlib".
std::optional<CobaltModule> loadModule(const char *Path,
                                       DiagnosticEngine &Diags) {
  if (std::strcmp(Path, "stdlib") == 0)
    return parseCobalt(opts::StdlibCobaltSource, Diags);
  auto Text = readFile(Path);
  if (!Text) {
    Diags.error(std::string("cannot read '") + Path + "'");
    return std::nullopt;
  }
  return parseCobalt(*Text, Diags);
}

/// Proves every definition in the module; returns the number of
/// failures and prints a per-definition verdict table.
unsigned checkModule(const CobaltModule &Module) {
  LabelRegistry Registry;
  for (const LabelDef &Def : Module.Labels)
    Registry.define(Def);
  for (const PureAnalysis &A : Module.Analyses)
    Registry.declareAnalysisLabel(A.LabelName);

  checker::SoundnessChecker Checker(Registry, Module.Analyses);
  Checker.setTimeoutMs(8000);

  unsigned Failures = 0;
  auto Report = [&](const checker::CheckReport &R) {
    std::printf("  %-24s %-10s %zu obligations, %.2f s\n", R.Name.c_str(),
                R.Sound ? "SOUND" : "REJECTED", R.Obligations.size(),
                R.TotalSeconds);
    if (!R.Sound) {
      ++Failures;
      for (const auto &Ob : R.Obligations)
        if (!Ob.proven())
          std::printf("      %s failed%s%s\n", Ob.Name.c_str(),
                      Ob.Counterexample.empty() ? "" : ": ",
                      Ob.Counterexample.substr(0, 120).c_str());
    }
  };

  for (const PureAnalysis &A : Module.Analyses)
    Report(Checker.checkAnalysis(A));
  for (const Optimization &O : Module.Optimizations)
    Report(Checker.checkOptimization(O));
  return Failures;
}

int cmdCheck(const char *ModulePath) {
  DiagnosticEngine Diags;
  auto Module = loadModule(ModulePath, Diags);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return 1;
  }
  std::printf("checking %zu label(s), %zu analysis(es), %zu "
              "optimization(s) from %s:\n",
              Module->Labels.size(), Module->Analyses.size(),
              Module->Optimizations.size(), ModulePath);
  unsigned Failures = checkModule(*Module);
  std::printf("%s\n", Failures == 0 ? "all definitions proven sound"
                                    : "REJECTED definitions present");
  return Failures == 0 ? 0 : 1;
}

int cmdRun(const char *ModulePath, const char *ProgramPath,
           const char *InputText) {
  DiagnosticEngine Diags;
  auto Module = loadModule(ModulePath, Diags);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return 1;
  }
  auto ProgramText = readFile(ProgramPath);
  if (!ProgramText) {
    std::fprintf(stderr, "cannot read '%s'\n", ProgramPath);
    return 1;
  }
  DiagnosticEngine ProgDiags;
  auto Prog = ir::parseProgram(*ProgramText, ProgDiags);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath,
                 ProgDiags.str().c_str());
    return 1;
  }

  std::printf("== soundness gate ==\n");
  if (checkModule(*Module) != 0) {
    std::fprintf(stderr,
                 "refusing to run: module contains unproven "
                 "optimizations\n");
    return 1;
  }

  int64_t Input = InputText ? std::atoll(InputText) : 0;
  ir::Program Original = *Prog;

  engine::PassManager PM;
  for (PureAnalysis &A : Module->Analyses)
    PM.addAnalysis(std::move(A));
  for (Optimization &O : Module->Optimizations)
    PM.addOptimization(std::move(O));

  std::printf("\n== optimizing ==\n");
  unsigned Applied = 0;
  for (const engine::PassReport &R : PM.run(*Prog)) {
    if (R.AppliedCount)
      std::printf("  %-24s %-10s rewrote %u site(s)\n", R.PassName.c_str(),
                  R.ProcName.c_str(), R.AppliedCount);
    Applied += R.AppliedCount;
  }
  std::printf("  total rewrites: %u\n\n%s\n", Applied,
              ir::toString(*Prog).c_str());

  ir::Interpreter IO(Original), IT(*Prog);
  ir::RunResult RO = IO.run(Input), RT = IT.run(Input);
  std::printf("main(%lld): original %s, optimized %s\n",
              static_cast<long long>(Input), RO.str().c_str(),
              RT.str().c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "stdlib") == 0) {
    std::printf("%s", opts::StdlibCobaltSource);
    return 0;
  }
  if (std::strcmp(Argv[1], "check") == 0 && Argc == 3)
    return cmdCheck(Argv[2]);
  if (std::strcmp(Argv[1], "run") == 0 && (Argc == 4 || Argc == 5))
    return cmdRun(Argv[2], Argv[3], Argc == 5 ? Argv[4] : nullptr);
  return usage();
}
