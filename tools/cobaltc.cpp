//===- cobaltc.cpp - The Cobalt checker/compiler driver -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver over the CobaltContext facade:
///
///   cobaltc check <module.cob>                  prove every definition
///   cobaltc opt   <module.cob> <program.il>     check, then print the
///                                               optimized program
///   cobaltc run   <module.cob> <program.il> N   check, then optimize and
///                                               run main(N) before/after
///   cobaltc validate <orig.il> <cand.il>        translation-validate an
///                                               untrusted optimized program
///                                               (exit 0 equivalent, 1
///                                               inequivalent, 3 unknown)
///   cobaltc stdlib                              print the bundled module
///   cobaltc client <verb> [args]                talk to a running cobaltd
///                                               (see below)
///
/// Flags are parsed from the shared table in Flags.cpp — the same rows
/// drive cobaltd and `cobaltc client`, so `--jobs`, `--cache-dir`,
/// `--worker-*`, and `--degraded=` cannot drift between the tools. The
/// highlights:
///
///   --jobs <n>              parallel obligation/procedure jobs
///                           (default 1 = sequential; results are
///                           bit-identical for every value; 0 = one per
///                           hardware thread)
///   --cache-dir <dir>       persist proved verdicts across runs
///   --report=json           machine-readable report on stdout
///   --prover-timeout <ms>   full per-obligation Z3 timeout (default 8000)
///   --prover-retries <n>    escalating retries before the full timeout
///   --prover-budget <ms>    total wall-clock budget per definition
///   --isolate-workers       discharge obligations in forked, watchdogged
///                           prover subprocesses (DESIGN.md §12)
///   --worker-wall <ms>      watchdog wall budget per obligation dispatch
///   --worker-rss <mb>       watchdog rss-growth budget per dispatch
///   --worker-restarts <n>   fresh workers tried per obligation before it
///                           is quarantined (default 2)
///   --degraded=MODE         quarantine (default) | inprocess
///   --fail-fast             stop checking at the first unproven
///                           definition (definitions run sequentially)
///   --keep-going            opt/run: apply the proven subset instead of
///                           refusing the whole module
///   --trace-out=FILE        write a Chrome trace_event JSON of the run
///   --metrics-out=FILE      write the metrics registry as JSON
///   --remarks=LEVEL         all | missed | none (stderr)
///
/// ## Client mode (DESIGN.md §13)
///
///   cobaltc client ping --socket S              daemon liveness + def count
///   cobaltc client check --socket S [--only N]* prove via the daemon
///   cobaltc client run <prog.il> --socket S [--only PASS]*
///                                               optimize via the daemon
///   cobaltc client validate <orig.il> <cand.il> --socket S
///                                               translation-validate via
///                                               the daemon
///   cobaltc client stats --socket S             telemetry summary table
///                                               (--report=json for bytes)
///   cobaltc client dump --socket S              flight-recorder snapshot
///   cobaltc client shutdown --socket S          stop the daemon
///
/// Client mode prints the daemon's JSON response verbatim — the daemon
/// serializes with the same code as --report=json, and concurrent
/// clients asking for the same suite receive byte-identical documents.
/// The one exception is `stats`, which by default renders the daemon's
/// counters and latency percentiles as a human-readable table; pass
/// --report=json for the raw response bytes.
/// `--deadline <ms>` bounds each response wait (default 30000). A
/// "retry" response (admission control) is retried with backoff a few
/// times before giving up with the degraded exit code.
///
/// Exit codes separate the fundamentally different outcomes:
///
///   0  all definitions proven sound (and, for opt/run, pipeline clean)
///   1  at least one definition REJECTED (genuine counterexample)
///   2  usage / cannot read or parse inputs (or the daemon rejected the
///      request as malformed)
///   3  infrastructure degraded: no counterexample anywhere, but some
///      obligation timed out / came back unknown, or a pass was rolled
///      back or quarantined at run time
///   4  containment degraded: prover workers crashed/hung past their
///      restart budget and obligations were quarantined (still no
///      counterexample; rejection takes precedence)
///   5  server unreachable (client mode only): cobaltd is not running at
///      --socket, or the connection died / timed out mid-request. Never
///      a verdict — retry against a live daemon.
///
/// `opt`/`run` refuse to apply unproven optimizations — the
/// extensible-compiler discipline of paper §1/§6. Under --keep-going the
/// proven subset still runs; unproven definitions are skipped and
/// reported.
///
/// Fault injection (COBALT_FAULTS / COBALT_FAULT_SEED, see
/// support/FaultInjection.h) is honored, so every degradation path can be
/// exercised from the command line.
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "api/ReportJson.h"
#include "ir/Interp.h"
#include "ir/Printer.h"
#include "opts/StdlibCobalt.h"
#include "service/Client.h"
#include "service/Protocol.h"
#include "support/FaultInjection.h"

#include "Flags.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cobalt;

namespace {

enum ExitCode {
  ExitAllSound = 0,
  ExitRejected = 1,
  ExitUsage = 2,
  ExitDegraded = 3,
  /// Worker containment degraded verdicts (quarantined obligations).
  /// Distinct from ExitDegraded so CI can tell "the prover gave up" from
  /// "the prover kept *dying*" without parsing reports.
  ExitContained = 4,
  /// Client mode: cobaltd unreachable / connection lost. Distinct from
  /// every verdict code so callers never mistake a transport failure for
  /// a soundness outcome.
  ExitUnreachable = 5,
};

constexpr unsigned LocalFlagSets =
    cli::FS_Core | cli::FS_Prover | cli::FS_Driver | cli::FS_Telemetry;
constexpr unsigned ClientFlagSets = cli::FS_Client;

int usage() {
  std::fprintf(
      stderr,
      "usage: cobaltc check <module.cob> [flags]\n"
      "       cobaltc opt <module.cob> <program.il> [flags]\n"
      "       cobaltc run <module.cob> <program.il> [input] [flags]\n"
      "       cobaltc validate <original.il> <candidate.il> [flags]\n"
      "       cobaltc client <ping|check|run|validate|stats|dump|"
      "shutdown> [args] --socket <path>\n"
      "       cobaltc stdlib\n"
      "%s"
      "client flags:\n"
      "%s"
      "exit:  0 all sound; 1 rejected definitions; 2 usage/input error;\n"
      "       (validate: 0 equivalent; 1 inequivalent; 3 unknown)\n"
      "       3 infrastructure degraded (timeouts/rollbacks, no "
      "counterexample);\n"
      "       4 containment degraded (prover workers died, obligations "
      "quarantined);\n"
      "       5 server unreachable (client mode: no daemon at --socket)\n",
      cli::flagUsage(LocalFlagSets).c_str(),
      cli::flagUsage(ClientFlagSets).c_str());
  return ExitUsage;
}

//===----------------------------------------------------------------------===//
// Observability wiring (--trace-out, --metrics-out, --remarks).
//===----------------------------------------------------------------------===//

/// Hooks the remark stream up to stderr at the requested level. Remarks
/// flow regardless of --trace-out/--metrics-out: they are pipeline data.
void attachRemarks(api::CobaltContext &Ctx, const cli::CommonOptions &Opts) {
  if (Opts.Remarks == cli::CommonOptions::RemarkLevel::RL_None)
    return;
  bool All = Opts.Remarks == cli::CommonOptions::RemarkLevel::RL_All;
  Ctx.setRemarkCallback([All](const support::Remark &R) {
    if (!All && R.K == support::Remark::Kind::RK_Passed)
      return;
    std::fprintf(stderr, "remark: %s\n", R.str().c_str());
  });
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  return (std::fclose(F) == 0) && Ok;
}

/// Re-indents a pretty-printed JSON document so it can be embedded as a
/// value inside the report object.
std::string indentJson(const std::string &Doc, const char *Pad) {
  std::string Out;
  Out.reserve(Doc.size());
  for (char C : Doc) {
    if (C == '\n') {
      Out += '\n';
      Out += Pad;
    } else {
      Out += C;
    }
  }
  while (!Out.empty() && (Out.back() == ' ' || Out.back() == '\n'))
    Out.pop_back();
  return Out;
}

/// Writes the --trace-out/--metrics-out files and emits the telemetry
/// summary: into \p JsonOut as a "telemetry" member when reporting JSON,
/// as a table on stderr otherwise. Failures warn and are otherwise
/// ignored — they never affect the exit code.
void emitTelemetry(api::CobaltContext &Ctx, const cli::CommonOptions &Opts,
                   std::string *JsonOut) {
  support::Telemetry *T = Ctx.telemetry();
  if (!T) {
    if (!Opts.TraceOut.empty() &&
        !writeTextFile(Opts.TraceOut, "{\"traceEvents\": []}\n"))
      std::fprintf(stderr, "cobaltc: warning: cannot write '%s'\n",
                   Opts.TraceOut.c_str());
    if (!Opts.MetricsOut.empty() &&
        !writeTextFile(Opts.MetricsOut, support::MetricsRegistry().json()))
      std::fprintf(stderr, "cobaltc: warning: cannot write '%s'\n",
                   Opts.MetricsOut.c_str());
    return;
  }
  if (!Opts.TraceOut.empty() &&
      !writeTextFile(Opts.TraceOut, T->Trace.json()))
    std::fprintf(stderr, "cobaltc: warning: cannot write trace to '%s'\n",
                 Opts.TraceOut.c_str());
  if (!Opts.MetricsOut.empty() &&
      !writeTextFile(Opts.MetricsOut, T->Metrics.json()))
    std::fprintf(stderr, "cobaltc: warning: cannot write metrics to '%s'\n",
                 Opts.MetricsOut.c_str());

  const support::MetricsRegistry &M = T->Metrics;
  if (JsonOut) {
    *JsonOut += ",\n  \"telemetry\": {\n    \"trace_spans\": " +
                std::to_string(T->Trace.eventCount()) +
                ",\n    \"metrics\": " + indentJson(M.json(), "    ") +
                "\n  }";
    return;
  }
  support::HistogramStats Prover = M.histogram("checker.prover_seconds");
  std::fprintf(
      stderr,
      "-- telemetry --\n"
      "  obligations  %llu (proven %llu, failed %llu, unknown %llu, "
      "retries %llu)\n"
      "  prover       %.2f s solver wall, rlimit %llu\n"
      "  cache        %llu hits / %llu misses (mem: %llu hits / %llu "
      "misses; disk: %llu hits, %llu stores, %llu corrupt)\n"
      "  workers      %llu spawned, %llu restarted, %llu obligation(s) "
      "quarantined\n"
      "  engine       %llu rewrites, %llu rollbacks, %llu quarantine "
      "skips\n"
      "  dataflow     %llu fixpoint iterations over %llu solves\n"
      "  trace        %zu spans\n",
      static_cast<unsigned long long>(M.counter("checker.obligations")),
      static_cast<unsigned long long>(
          M.counter("checker.obligations.proven")),
      static_cast<unsigned long long>(
          M.counter("checker.obligations.failed")),
      static_cast<unsigned long long>(
          M.counter("checker.obligations.unknown")),
      static_cast<unsigned long long>(M.counter("checker.retries")),
      Prover.Sum,
      static_cast<unsigned long long>(M.counter("checker.rlimit_spent")),
      static_cast<unsigned long long>(M.counter("checker.cache.hits")),
      static_cast<unsigned long long>(M.counter("checker.cache.misses")),
      static_cast<unsigned long long>(M.counter("cache.mem.hits")),
      static_cast<unsigned long long>(M.counter("cache.mem.misses")),
      static_cast<unsigned long long>(M.counter("cache.disk.hits")),
      static_cast<unsigned long long>(M.counter("cache.disk.stores")),
      static_cast<unsigned long long>(M.counter("cache.disk.corrupt")),
      static_cast<unsigned long long>(M.counter("worker.spawns")),
      static_cast<unsigned long long>(M.counter("worker.restarts")),
      static_cast<unsigned long long>(M.counter("worker.quarantined")),
      static_cast<unsigned long long>(M.counter("engine.rewrites")),
      static_cast<unsigned long long>(M.counter("engine.rollbacks")),
      static_cast<unsigned long long>(
          M.counter("engine.quarantine_skips")),
      static_cast<unsigned long long>(
          M.counter("dataflow.fixpoint_iters")),
      static_cast<unsigned long long>(M.counter("dataflow.solves")),
      T->Trace.eventCount());
}

//===----------------------------------------------------------------------===//
// Checking.
//===----------------------------------------------------------------------===//

/// Prints the human-readable per-definition verdict line(s).
void printReport(const checker::CheckReport &R) {
  const char *VerdictText = "SOUND";
  if (R.V == checker::CheckReport::Verdict::V_Unsound)
    VerdictText = "REJECTED";
  else if (R.V == checker::CheckReport::Verdict::V_Unproven)
    VerdictText = "UNPROVEN";
  std::printf("  %-24s %-10s %zu obligations, %.2f s%s\n", R.Name.c_str(),
              VerdictText, R.Obligations.size(), R.TotalSeconds,
              R.CacheHit ? " (cached)" : "");
  for (const auto &Ob : R.Obligations) {
    if (Ob.St == checker::ObligationResult::Status::OS_Failed)
      std::printf("      %s failed%s%s\n", Ob.Name.c_str(),
                  Ob.Counterexample.empty() ? "" : ": ",
                  Ob.Counterexample.substr(0, 120).c_str());
    else if (Ob.unknown())
      std::printf("      %s undecided [%s]: %s\n", Ob.Name.c_str(),
                  Ob.Err.kindName(), Ob.Err.Message.c_str());
  }
}

/// Proves every registered definition. The default path batches all
/// definitions through checkRegistered() (all obligations fan out over
/// the pool at once); --fail-fast instead checks definitions one by one
/// so it can stop at the first unproven one.
api::SuiteResult checkModule(api::CobaltContext &Ctx,
                             const CobaltModule &Module,
                             const cli::CommonOptions &Opts, bool Quiet) {
  api::SuiteResult Summary;
  if (!Opts.FailFast) {
    Summary = Ctx.checkRegistered();
    if (!Quiet)
      for (const checker::CheckReport &R : Summary.Reports)
        printReport(R);
  } else {
    for (const PureAnalysis &A : Module.Analyses) {
      checker::CheckReport R = Ctx.check(A);
      if (R.Sound)
        Summary.ProvenAnalyses.insert(A.Name);
      else if (R.unsound())
        ++Summary.Unsound;
      else
        ++Summary.Unproven;
      if (!Quiet)
        printReport(R);
      bool Stop = !R.Sound;
      Summary.Reports.push_back(std::move(R));
      if (Stop)
        return Summary;
    }
    for (const Optimization &O : Module.Optimizations) {
      checker::CheckReport R = Ctx.check(O);
      bool AnalysesOk = true;
      for (const std::string &Dep : R.AssumedAnalyses)
        AnalysesOk =
            AnalysesOk && Summary.ProvenAnalyses.count(Dep) != 0;
      if (R.Sound && AnalysesOk)
        Summary.ProvenOptimizations.insert(O.Name);
      else if (R.Sound)
        Summary.Conditional.push_back(O.Name);
      if (R.unsound())
        ++Summary.Unsound;
      else if (!R.Sound)
        ++Summary.Unproven;
      if (!Quiet)
        printReport(R);
      bool Stop = !R.Sound;
      Summary.Reports.push_back(std::move(R));
      if (Stop)
        return Summary;
    }
  }
  if (!Quiet)
    for (const std::string &Name : Summary.Conditional)
      std::printf("  %-24s note: proven, but an assumed analysis is "
                  "not — treated as unproven\n",
                  Name.c_str());
  return Summary;
}

/// Shared with cobaltd via api::CobaltService::exitCodeFor so the two
/// binaries classify identically (it also scans report obligations, so
/// the --fail-fast path's hand-built summary is covered).
int exitCodeFor(const api::SuiteResult &Summary, bool PipelineDegraded) {
  return api::CobaltService::exitCodeFor(Summary, PipelineDegraded);
}

//===----------------------------------------------------------------------===//
// Subcommands.
//===----------------------------------------------------------------------===//

int cmdCheck(const char *ModulePath, const cli::CommonOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  attachRemarks(Ctx, Opts);
  auto Module = Ctx.loadModuleFile(ModulePath);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Module.error().str().c_str());
    return ExitUsage;
  }
  CobaltModule Defs = *Module; // names kept for --fail-fast iteration
  Ctx.addModule(std::move(*Module));

  if (!Opts.ReportJson)
    std::printf("checking %zu label(s), %zu analysis(es), %zu "
                "optimization(s) from %s:\n",
                Defs.Labels.size(), Defs.Analyses.size(),
                Defs.Optimizations.size(), ModulePath);
  api::SuiteResult Summary =
      checkModule(Ctx, Defs, Opts, /*Quiet=*/Opts.ReportJson);
  int Exit = exitCodeFor(Summary, /*PipelineDegraded=*/false);

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"check\",\n";
    api::emitDefinitionsJson(Out, Summary.Reports);
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }

  if (Summary.Unsound > 0)
    std::printf("REJECTED definitions present\n");
  else if (Exit == ExitContained)
    std::printf("containment degraded: prover workers died past their "
                "restart budget; %u definition(s) unproven "
                "(no counterexample found)\n",
                Summary.Unproven);
  else if (Summary.Unproven > 0)
    std::printf("infrastructure degraded: %u definition(s) unproven "
                "(no counterexample found)\n",
                Summary.Unproven);
  else
    std::printf("all definitions proven sound\n");
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

/// The shared check-gate-optimize front half of `opt` and `run`.
/// Returns nullopt when the pipeline must not run (refusal or input
/// error); the exit code is then in \p Exit.
struct GatedPipeline {
  api::SuiteResult Summary;
  api::PipelineResult Pipeline;
  ir::Program Prog;
  unsigned Skipped = 0;
};

std::optional<GatedPipeline> gateAndOptimize(api::CobaltContext &Ctx,
                                             const char *ModulePath,
                                             const char *ProgramPath,
                                             const cli::CommonOptions &Opts,
                                             int &Exit) {
  auto Module = Ctx.loadModuleFile(ModulePath);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Module.error().str().c_str());
    Exit = ExitUsage;
    return std::nullopt;
  }
  auto Prog = Ctx.loadProgramFile(ProgramPath);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath,
                 Prog.error().str().c_str());
    Exit = ExitUsage;
    return std::nullopt;
  }
  CobaltModule Defs = *Module;
  Ctx.addModule(std::move(*Module));

  if (!Opts.ReportJson)
    std::printf("== soundness gate ==\n");
  GatedPipeline G;
  G.Prog = std::move(*Prog);
  G.Summary = checkModule(Ctx, Defs, Opts, /*Quiet=*/Opts.ReportJson);

  size_t Total = Defs.Analyses.size() + Defs.Optimizations.size();
  size_t Proven = G.Summary.ProvenAnalyses.size() +
                  G.Summary.ProvenOptimizations.size();
  bool AllProven = G.Summary.Unsound == 0 && G.Summary.Unproven == 0 &&
                   Proven == Total;
  if (!AllProven && !Opts.KeepGoing) {
    std::fprintf(stderr,
                 "refusing to run: module contains %s definitions "
                 "(use --keep-going to apply the proven subset)\n",
                 G.Summary.Unsound > 0 ? "rejected" : "unproven");
    Exit = exitCodeFor(G.Summary, /*PipelineDegraded=*/false);
    return std::nullopt;
  }
  if (!AllProven && !Opts.ReportJson)
    std::printf("\n== keep-going: applying the proven subset only ==\n");
  G.Skipped = static_cast<unsigned>(Total - Proven);
  if (G.Skipped && !Opts.ReportJson)
    std::printf("  skipped %u unproven definition(s)\n", G.Skipped);

  if (!Opts.ReportJson)
    std::printf("\n== optimizing ==\n");
  G.Pipeline = Ctx.runPipeline(G.Prog, G.Summary.provenPassNames());
  if (!Opts.ReportJson) {
    for (const engine::PassReport &R : G.Pipeline.Reports) {
      if (R.AppliedCount)
        std::printf("  %-24s %-10s rewrote %u site(s)\n",
                    R.PassName.c_str(), R.ProcName.c_str(),
                    R.AppliedCount);
      if (R.failed())
        std::printf("  %-24s %-10s %s [%s]%s%s\n", R.PassName.c_str(),
                    R.ProcName.c_str(),
                    R.Quarantined ? "quarantined" : "FAILED",
                    R.Err.kindName(),
                    R.RolledBack ? ", rolled back" : "",
                    R.Err.Message.empty()
                        ? ""
                        : (": " + R.Err.Message).c_str());
    }
    std::printf("  total rewrites: %u\n", G.Pipeline.Applied);
  }
  Exit = exitCodeFor(G.Summary, G.Pipeline.Degraded);
  return G;
}

int cmdOpt(const char *ModulePath, const char *ProgramPath,
           const cli::CommonOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  attachRemarks(Ctx, Opts);
  int Exit = ExitAllSound;
  auto G = gateAndOptimize(Ctx, ModulePath, ProgramPath, Opts, Exit);
  if (!G) {
    emitTelemetry(Ctx, Opts, nullptr);
    return Exit;
  }

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"opt\",\n";
    api::emitDefinitionsJson(Out, G->Summary.Reports);
    Out += ",\n";
    api::emitPipelineJson(Out, G->Pipeline.Reports);
    Out += ",\n  \"optimized_il\": \"" +
           api::jsonEscape(ir::toString(G->Prog)) + "\"";
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }
  std::printf("\n%s\n", ir::toString(G->Prog).c_str());
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

int cmdRun(const char *ModulePath, const char *ProgramPath,
           const char *InputText, const cli::CommonOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  attachRemarks(Ctx, Opts);
  int Exit = ExitAllSound;

  // Keep the pristine program for the before/after comparison.
  auto Original = Ctx.loadProgramFile(ProgramPath);
  auto G = gateAndOptimize(Ctx, ModulePath, ProgramPath, Opts, Exit);
  if (!G) {
    emitTelemetry(Ctx, Opts, nullptr);
    return Exit;
  }
  if (!Original) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath,
                 Original.error().str().c_str());
    return ExitUsage;
  }

  int64_t Input = InputText ? std::atoll(InputText) : 0;
  ir::Interpreter IO(*Original), IT(G->Prog);
  ir::RunResult RO = IO.run(Input), RT = IT.run(Input);

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"run\",\n";
    api::emitDefinitionsJson(Out, G->Summary.Reports);
    Out += ",\n";
    api::emitPipelineJson(Out, G->Pipeline.Reports);
    Out += ",\n  \"input\": " + std::to_string(Input);
    Out += ",\n  \"original_result\": \"" + api::jsonEscape(RO.str()) +
           "\"";
    Out += ",\n  \"optimized_result\": \"" + api::jsonEscape(RT.str()) +
           "\"";
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }

  std::printf("\n%s\n", ir::toString(G->Prog).c_str());
  std::printf("main(%lld): original %s, optimized %s\n",
              static_cast<long long>(Input), RO.str().c_str(),
              RT.str().c_str());
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

int cmdValidate(const char *OrigPath, const char *CandPath,
                const cli::CommonOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  auto Orig = Ctx.loadProgramFile(OrigPath);
  if (!Orig) {
    std::fprintf(stderr, "%s: %s\n", OrigPath, Orig.error().str().c_str());
    return ExitUsage;
  }
  auto Cand = Ctx.loadProgramFile(CandPath);
  if (!Cand) {
    std::fprintf(stderr, "%s: %s\n", CandPath, Cand.error().str().c_str());
    return ExitUsage;
  }

  api::ValidateRequest VR;
  VR.Original = std::move(*Orig);
  VR.Candidate = std::move(*Cand);
  api::ValidateResponse R = Ctx.service()->validate(std::move(VR));
  if (!R.ok()) {
    std::fprintf(stderr, "cobaltc: %s\n", R.Err.str().c_str());
    return ExitUsage;
  }
  int Exit = api::CobaltService::exitCodeFor(R.Report);

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"validate\",\n";
    api::emitValidationJson(Out, R.Report);
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }

  std::printf("%s", R.Report.str().c_str());
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

//===----------------------------------------------------------------------===//
// Client mode.
//===----------------------------------------------------------------------===//

/// Sends \p Request, retrying on "retry" responses (admission control)
/// with linear backoff. Returns the final response payload, or an
/// EK_Unavailable error on transport failure.
support::Expected<std::string>
clientExchange(service::Client &C, const std::string &Request,
               int64_t DeadlineMs) {
  for (unsigned Attempt = 0;; ++Attempt) {
    support::Expected<std::string> R = C.request(Request, DeadlineMs);
    if (!R)
      return R;
    if (Attempt < 5) {
      std::optional<service::JsonValue> Doc = service::parseJson(*R);
      if (Doc) {
        const service::JsonValue *Status = Doc->find("status");
        if (Status && Status->asString() == "retry") {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(50 * (Attempt + 1)));
          continue;
        }
      }
    }
    return R;
  }
}

/// The exit code a client response maps to: the server-computed "exit"
/// member for ok responses, degraded for exhausted retries, usage for
/// request errors. Transport failures never reach here (exit 5 happens
/// at the call sites).
int clientExit(const std::string &Response) {
  std::optional<service::JsonValue> Doc = service::parseJson(Response);
  if (!Doc)
    return ExitUsage;
  const service::JsonValue *Status = Doc->find("status");
  std::string St = Status ? Status->asString() : std::string();
  if (St == "retry")
    return ExitDegraded;
  if (St != "ok")
    return ExitUsage;
  if (const service::JsonValue *Exit = Doc->find("exit"))
    return static_cast<int>(Exit->asI64(ExitAllSound));
  return ExitAllSound;
}

/// Renders `client stats` as the human-readable telemetry summary.
/// Pure function of the response document: reads the embedded metrics
/// registry (counters + log-bucketed histograms) and prints the table;
/// anything absent (daemon without --telemetry) degrades to the header
/// line alone.
void renderClientStats(const service::JsonValue &Doc) {
  auto U64 = [](const service::JsonValue *V) -> unsigned long long {
    return V ? V->asU64() : 0;
  };
  auto Dbl = [](const service::JsonValue *V) -> double {
    return V && V->K == service::JsonValue::Kind::JK_Number
               ? std::strtod(V->Raw.c_str(), nullptr)
               : 0.0;
  };
  std::printf("cobaltd: %llu definition(s), %llu cache hit(s)\n",
              U64(Doc.find("definitions")), U64(Doc.find("cache_hits")));
  const service::JsonValue *Metrics = Doc.find("metrics");
  if (!Metrics) {
    std::printf("  (daemon has no telemetry session; start it with "
                "--telemetry for counters)\n");
    return;
  }
  const service::JsonValue *Counters = Metrics->find("counters");
  const service::JsonValue *Histograms = Metrics->find("histograms");
  auto C = [&](const char *Name) -> unsigned long long {
    return Counters ? U64(Counters->find(Name)) : 0;
  };
  std::printf("-- telemetry --\n");
  std::printf("  requests     %llu total (check %llu, run %llu, retry "
              "%llu, error %llu)\n",
              C("service.requests"), C("service.requests.check"),
              C("service.requests.run"), C("service.requests.retry"),
              C("service.requests.error"));
  std::printf("  dedup        %llu leader(s), %llu await(s), %llu "
              "served; admission rejected %llu\n",
              C("service.dedup.leader"), C("service.dedup.await"),
              C("service.dedup.served"), C("service.admission.rejected"));
  std::printf("  cache mem    %llu hits / %llu misses\n",
              C("cache.mem.hits"), C("cache.mem.misses"));
  std::printf("  cache disk   %llu hits / %llu misses, %llu stores, "
              "%llu corrupt\n",
              C("cache.disk.hits"), C("cache.disk.misses"),
              C("cache.disk.stores"), C("cache.disk.corrupt"));
  std::printf("  obligations  %llu (proven %llu, failed %llu, unknown "
              "%llu)\n",
              C("checker.obligations"), C("checker.obligations.proven"),
              C("checker.obligations.failed"),
              C("checker.obligations.unknown"));
  std::printf("  workers      %llu spawned, %llu restarted, %llu "
              "quarantined\n",
              C("worker.spawns"), C("worker.restarts"),
              C("worker.quarantined"));
  std::printf("  flight       %llu event(s) recorded\n",
              C("flight.events"));
  // Per-request-type latency percentiles from the daemon's log-bucketed
  // histograms (absent until the first request of that type arrives).
  static const struct {
    const char *Metric;
    const char *Label;
  } Latency[] = {{"service.latency.check", "check"},
                 {"service.latency.run", "run"},
                 {"service.latency.stats", "stats"}};
  for (const auto &L : Latency) {
    const service::JsonValue *H =
        Histograms ? Histograms->find(L.Metric) : nullptr;
    if (!H || U64(H->find("count")) == 0)
      continue;
    std::printf("  latency ms   %-5s p50 %.3f  p90 %.3f  p99 %.3f  "
                "(n=%llu, max %.3f)\n",
                L.Label, Dbl(H->find("p50")), Dbl(H->find("p90")),
                Dbl(H->find("p99")), U64(H->find("count")),
                Dbl(H->find("max")));
  }
}

int cmdClient(const std::vector<const char *> &Positional,
              const cli::CommonOptions &Opts) {
  if (Positional.size() < 2)
    return usage();
  const char *Verb = Positional[1];
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "cobaltc: client mode requires --socket\n");
    return ExitUsage;
  }

  std::string Request;
  if (std::strcmp(Verb, "ping") == 0 && Positional.size() == 2) {
    Request = service::makePingRequest();
  } else if (std::strcmp(Verb, "check") == 0 && Positional.size() == 2) {
    Request = service::makeCheckRequest(Opts.Only);
  } else if (std::strcmp(Verb, "run") == 0 && Positional.size() == 3) {
    std::ifstream In(Positional[2]);
    if (!In) {
      std::fprintf(stderr, "cobaltc: cannot read '%s'\n", Positional[2]);
      return ExitUsage;
    }
    std::ostringstream Text;
    Text << In.rdbuf();
    Request = service::makeRunRequest(Text.str(), Opts.Only,
                                      /*SelectedOnly=*/!Opts.Only.empty());
  } else if (std::strcmp(Verb, "validate") == 0 &&
             Positional.size() == 4) {
    std::string Texts[2];
    for (int I = 0; I < 2; ++I) {
      std::ifstream In(Positional[2 + I]);
      if (!In) {
        std::fprintf(stderr, "cobaltc: cannot read '%s'\n",
                     Positional[2 + I]);
        return ExitUsage;
      }
      std::ostringstream Text;
      Text << In.rdbuf();
      Texts[I] = Text.str();
    }
    Request = service::makeValidateRequest(Texts[0], Texts[1]);
  } else if (std::strcmp(Verb, "stats") == 0 && Positional.size() == 2) {
    Request = service::makeStatsRequest();
  } else if (std::strcmp(Verb, "dump") == 0 && Positional.size() == 2) {
    Request = service::makeDumpRequest();
  } else if (std::strcmp(Verb, "shutdown") == 0 &&
             Positional.size() == 2) {
    Request = service::makeShutdownRequest();
  } else {
    return usage();
  }

  service::Client C;
  if (support::Error E = C.connect(Opts.SocketPath); E.failed()) {
    std::fprintf(stderr, "cobaltc: %s\n", E.str().c_str());
    return ExitUnreachable;
  }
  support::Expected<std::string> R =
      clientExchange(C, Request, Opts.DeadlineMs);
  if (!R) {
    std::fprintf(stderr, "cobaltc: %s\n", R.error().str().c_str());
    return ExitUnreachable;
  }
  // `stats` is for humans by default; every other verb (and
  // --report=json) passes the daemon's bytes through untouched.
  if (std::strcmp(Verb, "stats") == 0 && !Opts.ReportJson) {
    std::optional<service::JsonValue> Doc = service::parseJson(*R);
    if (Doc && Doc->find("status") &&
        Doc->find("status")->asString() == "ok") {
      renderClientStats(*Doc);
      return ExitAllSound;
    }
  }
  std::printf("%s\n", R->c_str());
  return clientExit(*R);
}

} // namespace

int main(int Argc, char **Argv) {
  // Load any COBALT_FAULTS plan up front and surface it: silent fault
  // injection in a soundness tool would be a debugging nightmare.
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.empty())
    std::fprintf(stderr,
                 "cobaltc: fault injection active (COBALT_FAULTS)\n");

  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "stdlib") == 0) {
    std::printf("%s", opts::StdlibCobaltSource);
    return 0;
  }

  // Client mode parses the client flag set; everything else the local
  // one. Both come from the same table.
  bool ClientMode = std::strcmp(Argv[1], "client") == 0;
  cli::CommonOptions Opts;
  std::vector<const char *> Positional;
  if (!cli::parseFlags(Argc, Argv, "cobaltc",
                       ClientMode ? ClientFlagSets : LocalFlagSets, Opts,
                       Positional))
    return usage();

  if (ClientMode)
    return cmdClient(Positional, Opts);
  if (!Positional.empty() && std::strcmp(Positional[0], "check") == 0 &&
      Positional.size() == 2)
    return cmdCheck(Positional[1], Opts);
  if (!Positional.empty() && std::strcmp(Positional[0], "opt") == 0 &&
      Positional.size() == 3)
    return cmdOpt(Positional[1], Positional[2], Opts);
  if (!Positional.empty() && std::strcmp(Positional[0], "run") == 0 &&
      (Positional.size() == 3 || Positional.size() == 4))
    return cmdRun(Positional[1], Positional[2],
                  Positional.size() == 4 ? Positional[3] : nullptr, Opts);
  if (!Positional.empty() &&
      std::strcmp(Positional[0], "validate") == 0 &&
      Positional.size() == 3)
    return cmdValidate(Positional[1], Positional[2], Opts);
  return usage();
}
