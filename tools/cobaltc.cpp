//===- cobaltc.cpp - The Cobalt checker/compiler driver -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver tying the whole system together:
///
///   cobaltc check  <module.cob>                 prove every definition
///   cobaltc run    <module.cob> <program.il> N  check, then optimize and
///                                               run main(N) before/after
///   cobaltc stdlib                              print the bundled module
///
/// Flags (accepted anywhere after the subcommand):
///
///   --prover-timeout <ms>   full per-obligation Z3 timeout (default 8000)
///   --prover-retries <n>    escalating retries before the full timeout
///   --prover-budget <ms>    total wall-clock budget per definition
///   --fail-fast             stop checking at the first unproven definition
///   --keep-going            run: apply the proven subset instead of
///                           refusing the whole module
///
/// Exit codes separate the three fundamentally different outcomes:
///
///   0  all definitions proven sound (and, for run, pipeline clean)
///   1  at least one definition REJECTED (genuine counterexample)
///   2  usage / cannot read or parse inputs
///   3  infrastructure degraded: no counterexample anywhere, but some
///      obligation timed out / came back unknown, or a pass was rolled
///      back or quarantined at run time
///
/// `run` refuses to apply unproven optimizations — the extensible-compiler
/// discipline of paper §1/§6. Under --keep-going the proven subset still
/// runs; unproven definitions are skipped and reported.
///
/// Fault injection (COBALT_FAULTS / COBALT_FAULT_SEED, see
/// support/FaultInjection.h) is honored, so every degradation path can be
/// exercised from the command line.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "core/CobaltParser.h"
#include "engine/PassManager.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/StdlibCobalt.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace cobalt;

namespace {

enum ExitCode {
  ExitAllSound = 0,
  ExitRejected = 1,
  ExitUsage = 2,
  ExitDegraded = 3,
};

int usage() {
  std::fprintf(
      stderr,
      "usage: cobaltc check <module.cob> [flags]\n"
      "       cobaltc run <module.cob> <program.il> [input] [flags]\n"
      "       cobaltc stdlib\n"
      "flags: --prover-timeout <ms>  --prover-retries <n>\n"
      "       --prover-budget <ms>   --fail-fast  --keep-going\n"
      "exit:  0 all sound; 1 rejected definitions; 2 usage/input error;\n"
      "       3 infrastructure degraded (timeouts/rollbacks, no "
      "counterexample)\n");
  return ExitUsage;
}

struct DriverOptions {
  checker::ProverPolicy Prover;
  bool FailFast = false;
  bool KeepGoing = false;
};

/// Strips and parses the shared flags; leaves positional arguments in
/// \p Positional. Returns false on a malformed flag.
bool parseFlags(int Argc, char **Argv, DriverOptions &Opts,
                std::vector<const char *> &Positional) {
  Opts.Prover.TimeoutMs = 8000;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto TakesValue = [&](const char *Flag, unsigned long long &Out) {
      if (std::strcmp(Arg, Flag) != 0)
        return false;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cobaltc: %s requires a value\n", Flag);
        Out = ~0ull;
        return true;
      }
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    unsigned long long Value = 0;
    if (TakesValue("--prover-timeout", Value)) {
      if (Value == ~0ull || Value == 0)
        return false;
      Opts.Prover.TimeoutMs = static_cast<unsigned>(Value);
    } else if (TakesValue("--prover-retries", Value)) {
      if (Value == ~0ull)
        return false;
      Opts.Prover.Retries = static_cast<unsigned>(Value);
    } else if (TakesValue("--prover-budget", Value)) {
      if (Value == ~0ull)
        return false;
      Opts.Prover.BudgetMs = Value;
    } else if (std::strcmp(Arg, "--fail-fast") == 0) {
      Opts.FailFast = true;
    } else if (std::strcmp(Arg, "--keep-going") == 0) {
      Opts.KeepGoing = true;
    } else if (Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "cobaltc: unknown flag '%s'\n", Arg);
      return false;
    } else {
      Positional.push_back(Arg);
    }
  }
  return true;
}

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Parses a module, falling back to the bundled stdlib for the special
/// path "stdlib".
std::optional<CobaltModule> loadModule(const char *Path,
                                       DiagnosticEngine &Diags) {
  if (std::strcmp(Path, "stdlib") == 0)
    return parseCobalt(opts::StdlibCobaltSource, Diags);
  auto Text = readFile(Path);
  if (!Text) {
    Diags.error(std::string("cannot read '") + Path + "'");
    return std::nullopt;
  }
  return parseCobalt(*Text, Diags);
}

/// The outcome of proving one whole module.
struct CheckSummary {
  unsigned Unsound = 0;   ///< Genuine counterexamples.
  unsigned Unproven = 0;  ///< Prover gave up (infra degradation).
  std::vector<checker::CheckReport> Reports;
  std::set<std::string> ProvenAnalyses;      ///< By analysis name.
  std::set<std::string> ProvenOptimizations; ///< By optimization name.
};

/// Proves every definition in the module, printing a per-definition
/// verdict table that distinguishes REJECTED (unsound) from UNPROVEN
/// (prover timeout/unknown).
CheckSummary checkModule(const CobaltModule &Module,
                         const DriverOptions &Opts) {
  LabelRegistry Registry;
  for (const LabelDef &Def : Module.Labels)
    Registry.define(Def);
  for (const PureAnalysis &A : Module.Analyses)
    Registry.declareAnalysisLabel(A.LabelName);

  checker::SoundnessChecker Checker(Registry, Module.Analyses);
  Checker.setPolicy(Opts.Prover);

  CheckSummary Summary;
  auto Report = [&](const checker::CheckReport &R) {
    const char *VerdictText = "SOUND";
    if (R.V == checker::CheckReport::Verdict::V_Unsound) {
      VerdictText = "REJECTED";
      ++Summary.Unsound;
    } else if (R.V == checker::CheckReport::Verdict::V_Unproven) {
      VerdictText = "UNPROVEN";
      ++Summary.Unproven;
    }
    std::printf("  %-24s %-10s %zu obligations, %.2f s%s\n", R.Name.c_str(),
                VerdictText, R.Obligations.size(), R.TotalSeconds,
                R.CacheHit ? " (cached)" : "");
    for (const auto &Ob : R.Obligations) {
      if (Ob.St == checker::ObligationResult::Status::OS_Failed)
        std::printf("      %s failed%s%s\n", Ob.Name.c_str(),
                    Ob.Counterexample.empty() ? "" : ": ",
                    Ob.Counterexample.substr(0, 120).c_str());
      else if (Ob.unknown())
        std::printf("      %s undecided [%s]: %s\n", Ob.Name.c_str(),
                    support::errorKindName(Ob.Err),
                    Ob.UnknownReason.c_str());
    }
    Summary.Reports.push_back(R);
  };

  for (const PureAnalysis &A : Module.Analyses) {
    checker::CheckReport R = Checker.checkAnalysis(A);
    if (R.Sound)
      Summary.ProvenAnalyses.insert(A.Name);
    Report(R);
    if (Opts.FailFast && !R.Sound)
      return Summary;
  }
  for (const Optimization &O : Module.Optimizations) {
    checker::CheckReport R = Checker.checkOptimization(O);
    // The optimization's guarantee is conditional on its assumed
    // analyses being proven themselves.
    bool AnalysesOk = true;
    for (const std::string &Dep : R.AssumedAnalyses)
      AnalysesOk = AnalysesOk && Summary.ProvenAnalyses.count(Dep) != 0;
    if (R.Sound && AnalysesOk)
      Summary.ProvenOptimizations.insert(O.Name);
    else if (R.Sound && !AnalysesOk)
      std::printf("  %-24s note: proven, but an assumed analysis is "
                  "not — treated as unproven\n",
                  O.Name.c_str());
    Report(R);
    if (Opts.FailFast && !R.Sound)
      return Summary;
  }
  return Summary;
}

int exitCodeFor(const CheckSummary &Summary, bool PipelineDegraded) {
  if (Summary.Unsound > 0)
    return ExitRejected;
  if (Summary.Unproven > 0 || PipelineDegraded)
    return ExitDegraded;
  return ExitAllSound;
}

int cmdCheck(const char *ModulePath, const DriverOptions &Opts) {
  DiagnosticEngine Diags;
  auto Module = loadModule(ModulePath, Diags);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return ExitUsage;
  }
  std::printf("checking %zu label(s), %zu analysis(es), %zu "
              "optimization(s) from %s:\n",
              Module->Labels.size(), Module->Analyses.size(),
              Module->Optimizations.size(), ModulePath);
  CheckSummary Summary = checkModule(*Module, Opts);
  if (Summary.Unsound > 0)
    std::printf("REJECTED definitions present\n");
  else if (Summary.Unproven > 0)
    std::printf("infrastructure degraded: %u definition(s) unproven "
                "(no counterexample found)\n",
                Summary.Unproven);
  else
    std::printf("all definitions proven sound\n");
  return exitCodeFor(Summary, /*PipelineDegraded=*/false);
}

int cmdRun(const char *ModulePath, const char *ProgramPath,
           const char *InputText, const DriverOptions &Opts) {
  DiagnosticEngine Diags;
  auto Module = loadModule(ModulePath, Diags);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    return ExitUsage;
  }
  auto ProgramText = readFile(ProgramPath);
  if (!ProgramText) {
    std::fprintf(stderr, "cannot read '%s'\n", ProgramPath);
    return ExitUsage;
  }
  DiagnosticEngine ProgDiags;
  auto Prog = ir::parseProgram(*ProgramText, ProgDiags);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath,
                 ProgDiags.str().c_str());
    return ExitUsage;
  }

  std::printf("== soundness gate ==\n");
  CheckSummary Summary = checkModule(*Module, Opts);
  bool AllProven =
      Summary.Unsound == 0 && Summary.Unproven == 0 &&
      Summary.ProvenOptimizations.size() == Module->Optimizations.size();
  if (!AllProven && !Opts.KeepGoing) {
    std::fprintf(stderr,
                 "refusing to run: module contains %s definitions "
                 "(use --keep-going to apply the proven subset)\n",
                 Summary.Unsound > 0 ? "rejected" : "unproven");
    return exitCodeFor(Summary, /*PipelineDegraded=*/false);
  }
  if (!AllProven)
    std::printf("\n== keep-going: applying the proven subset only ==\n");

  int64_t Input = InputText ? std::atoll(InputText) : 0;
  ir::Program Original = *Prog;

  engine::PassManager PM;
  unsigned Skipped = 0;
  for (PureAnalysis &A : Module->Analyses) {
    if (Summary.ProvenAnalyses.count(A.Name))
      PM.addAnalysis(std::move(A));
    else
      ++Skipped;
  }
  for (Optimization &O : Module->Optimizations) {
    if (Summary.ProvenOptimizations.count(O.Name))
      PM.addOptimization(std::move(O));
    else
      ++Skipped;
  }
  if (Skipped)
    std::printf("  skipped %u unproven definition(s)\n", Skipped);

  std::printf("\n== optimizing ==\n");
  unsigned Applied = 0;
  for (const engine::PassReport &R : PM.run(*Prog)) {
    if (R.AppliedCount)
      std::printf("  %-24s %-10s rewrote %u site(s)\n", R.PassName.c_str(),
                  R.ProcName.c_str(), R.AppliedCount);
    if (R.failed())
      std::printf("  %-24s %-10s %s [%s]%s%s\n", R.PassName.c_str(),
                  R.ProcName.c_str(),
                  R.Quarantined ? "quarantined" : "FAILED",
                  support::errorKindName(R.Error),
                  R.RolledBack ? ", rolled back" : "",
                  R.ErrorDetail.empty() ? ""
                                        : (": " + R.ErrorDetail).c_str());
    Applied += R.AppliedCount;
  }
  std::printf("  total rewrites: %u\n\n%s\n", Applied,
              ir::toString(*Prog).c_str());

  ir::Interpreter IO(Original), IT(*Prog);
  ir::RunResult RO = IO.run(Input), RT = IT.run(Input);
  std::printf("main(%lld): original %s, optimized %s\n",
              static_cast<long long>(Input), RO.str().c_str(),
              RT.str().c_str());
  return exitCodeFor(Summary, PM.lastRunDegraded());
}

} // namespace

int main(int Argc, char **Argv) {
  // Load any COBALT_FAULTS plan up front and surface it: silent fault
  // injection in a soundness tool would be a debugging nightmare.
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.empty())
    std::fprintf(stderr,
                 "cobaltc: fault injection active (COBALT_FAULTS)\n");

  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "stdlib") == 0) {
    std::printf("%s", opts::StdlibCobaltSource);
    return 0;
  }

  DriverOptions Opts;
  std::vector<const char *> Positional;
  if (!parseFlags(Argc, Argv, Opts, Positional))
    return usage();

  if (!Positional.empty() && std::strcmp(Positional[0], "check") == 0 &&
      Positional.size() == 2)
    return cmdCheck(Positional[1], Opts);
  if (!Positional.empty() && std::strcmp(Positional[0], "run") == 0 &&
      (Positional.size() == 3 || Positional.size() == 4))
    return cmdRun(Positional[1], Positional[2],
                  Positional.size() == 4 ? Positional[3] : nullptr, Opts);
  return usage();
}
