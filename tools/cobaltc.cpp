//===- cobaltc.cpp - The Cobalt checker/compiler driver -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Command-line driver over the CobaltContext facade:
///
///   cobaltc check <module.cob>                  prove every definition
///   cobaltc opt   <module.cob> <program.il>     check, then print the
///                                               optimized program
///   cobaltc run   <module.cob> <program.il> N   check, then optimize and
///                                               run main(N) before/after
///   cobaltc stdlib                              print the bundled module
///
/// Flags (accepted anywhere after the subcommand):
///
///   --jobs <n>              parallel obligation/procedure jobs
///                           (default 1 = sequential; results are
///                           bit-identical for every value; 0 = one per
///                           hardware thread)
///   --cache-dir <dir>       persist proved verdicts across runs
///   --report=json           machine-readable report on stdout
///   --prover-timeout <ms>   full per-obligation Z3 timeout (default 8000)
///   --prover-retries <n>    escalating retries before the full timeout
///   --prover-budget <ms>    total wall-clock budget per definition
///   --isolate-workers       discharge obligations in forked, watchdogged
///                           prover subprocesses: a solver crash, hang, or
///                           memory blowup degrades that obligation
///                           instead of killing the run (DESIGN.md §12)
///   --worker-wall <ms>      watchdog wall budget per obligation dispatch
///                           (default derived from --prover-timeout)
///   --worker-rss <mb>       watchdog rss-growth budget per obligation
///                           dispatch (default off)
///   --worker-restarts <n>   fresh workers tried per obligation before it
///                           is quarantined (default 2)
///   --degraded=MODE         what to do with a quarantined obligation:
///                           quarantine (default: report unproven) |
///                           inprocess (retry without isolation)
///   --fail-fast             stop checking at the first unproven
///                           definition (definitions run sequentially)
///   --keep-going            opt/run: apply the proven subset instead of
///                           refusing the whole module
///   --trace-out=FILE        write a Chrome trace_event JSON of the run
///                           (load in chrome://tracing or Perfetto)
///   --metrics-out=FILE      write the metrics registry as JSON
///   --remarks=LEVEL         print optimization remarks to stderr:
///                           all | missed (missed + rolled-back) | none
///
/// Exit codes separate the three fundamentally different outcomes:
///
///   0  all definitions proven sound (and, for opt/run, pipeline clean)
///   1  at least one definition REJECTED (genuine counterexample)
///   2  usage / cannot read or parse inputs
///   3  infrastructure degraded: no counterexample anywhere, but some
///      obligation timed out / came back unknown, or a pass was rolled
///      back or quarantined at run time
///   4  containment degraded: prover workers crashed/hung past their
///      restart budget and obligations were quarantined (still no
///      counterexample; rejection takes precedence)
///
/// `opt`/`run` refuse to apply unproven optimizations — the
/// extensible-compiler discipline of paper §1/§6. Under --keep-going the
/// proven subset still runs; unproven definitions are skipped and
/// reported.
///
/// Fault injection (COBALT_FAULTS / COBALT_FAULT_SEED, see
/// support/FaultInjection.h) is honored, so every degradation path can be
/// exercised from the command line.
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "ir/Interp.h"
#include "ir/Printer.h"
#include "opts/StdlibCobalt.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cobalt;

namespace {

enum ExitCode {
  ExitAllSound = 0,
  ExitRejected = 1,
  ExitUsage = 2,
  ExitDegraded = 3,
  /// Worker containment degraded verdicts (quarantined obligations).
  /// Distinct from ExitDegraded so CI can tell "the prover gave up" from
  /// "the prover kept *dying*" without parsing reports.
  ExitContained = 4,
};

int usage() {
  std::fprintf(
      stderr,
      "usage: cobaltc check <module.cob> [flags]\n"
      "       cobaltc opt <module.cob> <program.il> [flags]\n"
      "       cobaltc run <module.cob> <program.il> [input] [flags]\n"
      "       cobaltc stdlib\n"
      "flags: --jobs <n>  --cache-dir <dir>  --report=json\n"
      "       --prover-timeout <ms>  --prover-retries <n>\n"
      "       --prover-budget <ms>   --fail-fast  --keep-going\n"
      "       --isolate-workers  --worker-wall <ms>  --worker-rss <mb>\n"
      "       --worker-restarts <n>  --degraded=[quarantine|inprocess]\n"
      "       --trace-out=FILE  --metrics-out=FILE\n"
      "       --remarks=[all|missed|none]\n"
      "exit:  0 all sound; 1 rejected definitions; 2 usage/input error;\n"
      "       3 infrastructure degraded (timeouts/rollbacks, no "
      "counterexample);\n"
      "       4 containment degraded (prover workers died, obligations "
      "quarantined)\n");
  return ExitUsage;
}

struct DriverOptions {
  api::CobaltConfig Config;
  bool FailFast = false;
  bool KeepGoing = false;
  bool ReportJson = false;
  std::string TraceOut;   ///< --trace-out=FILE (empty = no trace file).
  std::string MetricsOut; ///< --metrics-out=FILE.
  enum class RemarkLevel { RL_None, RL_Missed, RL_All };
  RemarkLevel Remarks = RemarkLevel::RL_None;
};

/// Strips and parses the shared flags; leaves positional arguments in
/// \p Positional. Returns false on a malformed flag.
bool parseFlags(int Argc, char **Argv, DriverOptions &Opts,
                std::vector<const char *> &Positional) {
  Opts.Config.Prover.TimeoutMs = 8000;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto TakesValue = [&](const char *Flag, unsigned long long &Out) {
      if (std::strcmp(Arg, Flag) != 0)
        return false;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cobaltc: %s requires a value\n", Flag);
        Out = ~0ull;
        return true;
      }
      Out = std::strtoull(Argv[++I], nullptr, 10);
      return true;
    };
    auto ValueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return std::strncmp(Arg, Prefix, Len) == 0 ? Arg + Len : nullptr;
    };
    unsigned long long Value = 0;
    if (TakesValue("--prover-timeout", Value)) {
      if (Value == ~0ull || Value == 0)
        return false;
      Opts.Config.Prover.TimeoutMs = static_cast<unsigned>(Value);
    } else if (TakesValue("--prover-retries", Value)) {
      if (Value == ~0ull)
        return false;
      Opts.Config.Prover.Retries = static_cast<unsigned>(Value);
    } else if (TakesValue("--prover-budget", Value)) {
      if (Value == ~0ull)
        return false;
      Opts.Config.Prover.BudgetMs = Value;
    } else if (TakesValue("--jobs", Value)) {
      if (Value == ~0ull)
        return false;
      Opts.Config.Jobs = static_cast<unsigned>(Value);
    } else if (std::strcmp(Arg, "--isolate-workers") == 0) {
      Opts.Config.Prover.Isolation =
          checker::WorkerIsolation::WI_Subprocess;
    } else if (TakesValue("--worker-wall", Value)) {
      if (Value == ~0ull || Value == 0)
        return false;
      Opts.Config.Prover.WorkerWallMs = static_cast<unsigned>(Value);
    } else if (TakesValue("--worker-rss", Value)) {
      if (Value == ~0ull || Value == 0)
        return false;
      Opts.Config.Prover.WorkerRssMb = static_cast<unsigned>(Value);
    } else if (TakesValue("--worker-restarts", Value)) {
      if (Value == ~0ull)
        return false;
      Opts.Config.Prover.WorkerRestarts = static_cast<unsigned>(Value);
    } else if (const char *V = ValueOf("--degraded=")) {
      if (std::strcmp(V, "quarantine") == 0)
        Opts.Config.Prover.Degraded = checker::DegradedMode::DM_Quarantine;
      else if (std::strcmp(V, "inprocess") == 0)
        Opts.Config.Prover.Degraded = checker::DegradedMode::DM_InProcess;
      else {
        std::fprintf(
            stderr,
            "cobaltc: --degraded= takes quarantine or inprocess\n");
        return false;
      }
    } else if (std::strcmp(Arg, "--cache-dir") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cobaltc: --cache-dir requires a value\n");
        return false;
      }
      Opts.Config.CacheDir = Argv[++I];
    } else if (std::strcmp(Arg, "--report=json") == 0) {
      Opts.ReportJson = true;
    } else if (const char *V = ValueOf("--trace-out=")) {
      if (!*V) {
        std::fprintf(stderr, "cobaltc: --trace-out= requires a file\n");
        return false;
      }
      Opts.TraceOut = V;
    } else if (const char *V = ValueOf("--metrics-out=")) {
      if (!*V) {
        std::fprintf(stderr, "cobaltc: --metrics-out= requires a file\n");
        return false;
      }
      Opts.MetricsOut = V;
    } else if (const char *V = ValueOf("--remarks=")) {
      if (std::strcmp(V, "all") == 0)
        Opts.Remarks = DriverOptions::RemarkLevel::RL_All;
      else if (std::strcmp(V, "missed") == 0)
        Opts.Remarks = DriverOptions::RemarkLevel::RL_Missed;
      else if (std::strcmp(V, "none") == 0)
        Opts.Remarks = DriverOptions::RemarkLevel::RL_None;
      else {
        std::fprintf(stderr,
                     "cobaltc: --remarks= takes all, missed, or none\n");
        return false;
      }
    } else if (std::strcmp(Arg, "--fail-fast") == 0) {
      Opts.FailFast = true;
    } else if (std::strcmp(Arg, "--keep-going") == 0) {
      Opts.KeepGoing = true;
    } else if (Arg[0] == '-' && Arg[1] == '-') {
      std::fprintf(stderr, "cobaltc: unknown flag '%s'\n", Arg);
      return false;
    } else {
      Positional.push_back(Arg);
    }
  }
  if (!Opts.TraceOut.empty() || !Opts.MetricsOut.empty()) {
    // Telemetry failures never change exit codes: a soundness tool's
    // verdict must not depend on whether its instrumentation worked.
    if (support::telemetryCompiledIn())
      Opts.Config.Telemetry = true;
    else
      std::fprintf(stderr,
                   "cobaltc: warning: this build has telemetry compiled "
                   "out (-DCOBALT_TELEMETRY=OFF); --trace-out/"
                   "--metrics-out will write empty documents\n");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Observability wiring (--trace-out, --metrics-out, --remarks).
//===----------------------------------------------------------------------===//

/// Hooks the remark stream up to stderr at the requested level. Remarks
/// flow regardless of --trace-out/--metrics-out: they are pipeline data.
void attachRemarks(api::CobaltContext &Ctx, const DriverOptions &Opts) {
  if (Opts.Remarks == DriverOptions::RemarkLevel::RL_None)
    return;
  bool All = Opts.Remarks == DriverOptions::RemarkLevel::RL_All;
  Ctx.setRemarkCallback([All](const support::Remark &R) {
    if (!All && R.K == support::Remark::Kind::RK_Passed)
      return;
    std::fprintf(stderr, "remark: %s\n", R.str().c_str());
  });
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  return (std::fclose(F) == 0) && Ok;
}

/// Re-indents a pretty-printed JSON document so it can be embedded as a
/// value inside the report object.
std::string indentJson(const std::string &Doc, const char *Pad) {
  std::string Out;
  Out.reserve(Doc.size());
  for (char C : Doc) {
    if (C == '\n') {
      Out += '\n';
      Out += Pad;
    } else {
      Out += C;
    }
  }
  while (!Out.empty() && (Out.back() == ' ' || Out.back() == '\n'))
    Out.pop_back();
  return Out;
}

/// Writes the --trace-out/--metrics-out files and emits the telemetry
/// summary: into \p JsonOut as a "telemetry" member when reporting JSON,
/// as a table on stderr otherwise. Failures warn and are otherwise
/// ignored — they never affect the exit code.
void emitTelemetry(api::CobaltContext &Ctx, const DriverOptions &Opts,
                   std::string *JsonOut) {
  support::Telemetry *T = Ctx.telemetry();
  if (!T) {
    if (!Opts.TraceOut.empty() &&
        !writeTextFile(Opts.TraceOut, "{\"traceEvents\": []}\n"))
      std::fprintf(stderr, "cobaltc: warning: cannot write '%s'\n",
                   Opts.TraceOut.c_str());
    if (!Opts.MetricsOut.empty() &&
        !writeTextFile(Opts.MetricsOut, support::MetricsRegistry().json()))
      std::fprintf(stderr, "cobaltc: warning: cannot write '%s'\n",
                   Opts.MetricsOut.c_str());
    return;
  }
  if (!Opts.TraceOut.empty() &&
      !writeTextFile(Opts.TraceOut, T->Trace.json()))
    std::fprintf(stderr, "cobaltc: warning: cannot write trace to '%s'\n",
                 Opts.TraceOut.c_str());
  if (!Opts.MetricsOut.empty() &&
      !writeTextFile(Opts.MetricsOut, T->Metrics.json()))
    std::fprintf(stderr, "cobaltc: warning: cannot write metrics to '%s'\n",
                 Opts.MetricsOut.c_str());

  const support::MetricsRegistry &M = T->Metrics;
  if (JsonOut) {
    *JsonOut += ",\n  \"telemetry\": {\n    \"trace_spans\": " +
                std::to_string(T->Trace.eventCount()) +
                ",\n    \"metrics\": " + indentJson(M.json(), "    ") +
                "\n  }";
    return;
  }
  support::HistogramStats Prover = M.histogram("checker.prover_seconds");
  std::fprintf(
      stderr,
      "-- telemetry --\n"
      "  obligations  %llu (proven %llu, failed %llu, unknown %llu, "
      "retries %llu)\n"
      "  prover       %.2f s solver wall, rlimit %llu\n"
      "  cache        %llu hits / %llu misses (disk: %llu hits, %llu "
      "stores, %llu corrupt)\n"
      "  workers      %llu spawned, %llu restarted, %llu obligation(s) "
      "quarantined\n"
      "  engine       %llu rewrites, %llu rollbacks, %llu quarantine "
      "skips\n"
      "  dataflow     %llu fixpoint iterations over %llu solves\n"
      "  trace        %zu spans\n",
      static_cast<unsigned long long>(M.counter("checker.obligations")),
      static_cast<unsigned long long>(
          M.counter("checker.obligations.proven")),
      static_cast<unsigned long long>(
          M.counter("checker.obligations.failed")),
      static_cast<unsigned long long>(
          M.counter("checker.obligations.unknown")),
      static_cast<unsigned long long>(M.counter("checker.retries")),
      Prover.Sum,
      static_cast<unsigned long long>(M.counter("checker.rlimit_spent")),
      static_cast<unsigned long long>(M.counter("checker.cache.hits")),
      static_cast<unsigned long long>(M.counter("checker.cache.misses")),
      static_cast<unsigned long long>(M.counter("cache.disk.hits")),
      static_cast<unsigned long long>(M.counter("cache.disk.stores")),
      static_cast<unsigned long long>(M.counter("cache.disk.corrupt")),
      static_cast<unsigned long long>(M.counter("worker.spawns")),
      static_cast<unsigned long long>(M.counter("worker.restarts")),
      static_cast<unsigned long long>(M.counter("worker.quarantined")),
      static_cast<unsigned long long>(M.counter("engine.rewrites")),
      static_cast<unsigned long long>(M.counter("engine.rollbacks")),
      static_cast<unsigned long long>(
          M.counter("engine.quarantine_skips")),
      static_cast<unsigned long long>(
          M.counter("dataflow.fixpoint_iters")),
      static_cast<unsigned long long>(M.counter("dataflow.solves")),
      T->Trace.eventCount());
}

//===----------------------------------------------------------------------===//
// JSON emission (--report=json).
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

const char *verdictName(const checker::CheckReport &R) {
  switch (R.V) {
  case checker::CheckReport::Verdict::V_Sound:
    return "sound";
  case checker::CheckReport::Verdict::V_Unsound:
    return "unsound";
  case checker::CheckReport::Verdict::V_Unproven:
    return "unproven";
  }
  return "unproven";
}

const char *statusName(const checker::ObligationResult &Ob) {
  switch (Ob.St) {
  case checker::ObligationResult::Status::OS_Proven:
    return "proven";
  case checker::ObligationResult::Status::OS_Failed:
    return "failed";
  case checker::ObligationResult::Status::OS_Unknown:
    return "unknown";
  }
  return "unknown";
}

void emitDefinitionsJson(std::string &Out,
                         const std::vector<checker::CheckReport> &Reports) {
  Out += "  \"definitions\": [";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const checker::CheckReport &R = Reports[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"name\": \"" + jsonEscape(R.Name) + "\"";
    Out += ", \"verdict\": \"" + std::string(verdictName(R)) + "\"";
    Out += ", \"cached\": ";
    Out += R.CacheHit ? "true" : "false";
    Out += ", \"degradation\": \"" +
           std::string(support::errorKindName(R.Degradation)) + "\"";
    Out += ", \"assumed_analyses\": [";
    for (size_t J = 0; J < R.AssumedAnalyses.size(); ++J) {
      if (J)
        Out += ", ";
      Out += "\"" + jsonEscape(R.AssumedAnalyses[J]) + "\"";
    }
    Out += "], \"obligations\": [";
    for (size_t J = 0; J < R.Obligations.size(); ++J) {
      const checker::ObligationResult &Ob = R.Obligations[J];
      if (J)
        Out += ", ";
      Out += "{\"name\": \"" + jsonEscape(Ob.Name) + "\"";
      Out += ", \"status\": \"" + std::string(statusName(Ob)) + "\"";
      Out += ", \"error\": \"" + std::string(Ob.Err.kindName()) + "\"";
      if (!Ob.Err.Message.empty())
        Out += ", \"reason\": \"" + jsonEscape(Ob.Err.Message) + "\"";
      if (!Ob.Counterexample.empty())
        Out += ", \"counterexample\": \"" + jsonEscape(Ob.Counterexample) +
               "\"";
      Out += "}";
    }
    Out += "]}";
  }
  Out += "\n  ]";
}

void emitPipelineJson(std::string &Out,
                      const std::vector<engine::PassReport> &Reports) {
  Out += "  \"pipeline\": [";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const engine::PassReport &R = Reports[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"pass\": \"" + jsonEscape(R.PassName) + "\"";
    Out += ", \"proc\": \"" + jsonEscape(R.ProcName) + "\"";
    Out += ", \"applied\": " + std::to_string(R.AppliedCount);
    Out += ", \"error\": \"" + std::string(R.Err.kindName()) + "\"";
    if (!R.Err.Message.empty())
      Out += ", \"detail\": \"" + jsonEscape(R.Err.Message) + "\"";
    Out += ", \"rolled_back\": ";
    Out += R.RolledBack ? "true" : "false";
    Out += ", \"quarantined\": ";
    Out += R.Quarantined ? "true" : "false";
    Out += "}";
  }
  Out += "\n  ]";
}

//===----------------------------------------------------------------------===//
// Checking.
//===----------------------------------------------------------------------===//

/// Prints the human-readable per-definition verdict line(s).
void printReport(const checker::CheckReport &R) {
  const char *VerdictText = "SOUND";
  if (R.V == checker::CheckReport::Verdict::V_Unsound)
    VerdictText = "REJECTED";
  else if (R.V == checker::CheckReport::Verdict::V_Unproven)
    VerdictText = "UNPROVEN";
  std::printf("  %-24s %-10s %zu obligations, %.2f s%s\n", R.Name.c_str(),
              VerdictText, R.Obligations.size(), R.TotalSeconds,
              R.CacheHit ? " (cached)" : "");
  for (const auto &Ob : R.Obligations) {
    if (Ob.St == checker::ObligationResult::Status::OS_Failed)
      std::printf("      %s failed%s%s\n", Ob.Name.c_str(),
                  Ob.Counterexample.empty() ? "" : ": ",
                  Ob.Counterexample.substr(0, 120).c_str());
    else if (Ob.unknown())
      std::printf("      %s undecided [%s]: %s\n", Ob.Name.c_str(),
                  Ob.Err.kindName(), Ob.Err.Message.c_str());
  }
}

/// Proves every registered definition. The default path batches all
/// definitions through checkRegistered() (all obligations fan out over
/// the pool at once); --fail-fast instead checks definitions one by one
/// so it can stop at the first unproven one.
api::SuiteResult checkModule(api::CobaltContext &Ctx,
                             const CobaltModule &Module,
                             const DriverOptions &Opts, bool Quiet) {
  api::SuiteResult Summary;
  if (!Opts.FailFast) {
    Summary = Ctx.checkRegistered();
    if (!Quiet)
      for (const checker::CheckReport &R : Summary.Reports)
        printReport(R);
  } else {
    for (const PureAnalysis &A : Module.Analyses) {
      checker::CheckReport R = Ctx.check(A);
      if (R.Sound)
        Summary.ProvenAnalyses.insert(A.Name);
      else if (R.unsound())
        ++Summary.Unsound;
      else
        ++Summary.Unproven;
      if (!Quiet)
        printReport(R);
      bool Stop = !R.Sound;
      Summary.Reports.push_back(std::move(R));
      if (Stop)
        return Summary;
    }
    for (const Optimization &O : Module.Optimizations) {
      checker::CheckReport R = Ctx.check(O);
      bool AnalysesOk = true;
      for (const std::string &Dep : R.AssumedAnalyses)
        AnalysesOk =
            AnalysesOk && Summary.ProvenAnalyses.count(Dep) != 0;
      if (R.Sound && AnalysesOk)
        Summary.ProvenOptimizations.insert(O.Name);
      else if (R.Sound)
        Summary.Conditional.push_back(O.Name);
      if (R.unsound())
        ++Summary.Unsound;
      else if (!R.Sound)
        ++Summary.Unproven;
      if (!Quiet)
        printReport(R);
      bool Stop = !R.Sound;
      Summary.Reports.push_back(std::move(R));
      if (Stop)
        return Summary;
    }
  }
  if (!Quiet)
    for (const std::string &Name : Summary.Conditional)
      std::printf("  %-24s note: proven, but an assumed analysis is "
                  "not — treated as unproven\n",
                  Name.c_str());
  return Summary;
}

/// True when any obligation anywhere was quarantined by worker
/// containment. Scans the reports (instead of trusting
/// SuiteResult::Quarantined alone) so the --fail-fast path, which builds
/// its summary by hand, gets the same classification.
bool anyQuarantined(const api::SuiteResult &Summary) {
  if (Summary.containmentDegraded())
    return true;
  for (const checker::CheckReport &R : Summary.Reports)
    for (const checker::ObligationResult &Ob : R.Obligations)
      if (Ob.Err.Kind == support::ErrorKind::EK_WorkerCrash)
        return true;
  return false;
}

int exitCodeFor(const api::SuiteResult &Summary, bool PipelineDegraded) {
  // Precedence: a genuine counterexample always dominates; containment
  // degradation outranks plain infra degradation (it names a *cause* —
  // dying workers — where 3 only names a symptom).
  if (Summary.Unsound > 0)
    return ExitRejected;
  if (anyQuarantined(Summary))
    return ExitContained;
  if (Summary.Unproven > 0 || PipelineDegraded)
    return ExitDegraded;
  return ExitAllSound;
}

//===----------------------------------------------------------------------===//
// Subcommands.
//===----------------------------------------------------------------------===//

int cmdCheck(const char *ModulePath, const DriverOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  attachRemarks(Ctx, Opts);
  auto Module = Ctx.loadModuleFile(ModulePath);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Module.error().str().c_str());
    return ExitUsage;
  }
  CobaltModule Defs = *Module; // names kept for --fail-fast iteration
  Ctx.addModule(std::move(*Module));

  if (!Opts.ReportJson)
    std::printf("checking %zu label(s), %zu analysis(es), %zu "
                "optimization(s) from %s:\n",
                Defs.Labels.size(), Defs.Analyses.size(),
                Defs.Optimizations.size(), ModulePath);
  api::SuiteResult Summary =
      checkModule(Ctx, Defs, Opts, /*Quiet=*/Opts.ReportJson);
  int Exit = exitCodeFor(Summary, /*PipelineDegraded=*/false);

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"check\",\n";
    emitDefinitionsJson(Out, Summary.Reports);
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }

  if (Summary.Unsound > 0)
    std::printf("REJECTED definitions present\n");
  else if (Exit == ExitContained)
    std::printf("containment degraded: prover workers died past their "
                "restart budget; %u definition(s) unproven "
                "(no counterexample found)\n",
                Summary.Unproven);
  else if (Summary.Unproven > 0)
    std::printf("infrastructure degraded: %u definition(s) unproven "
                "(no counterexample found)\n",
                Summary.Unproven);
  else
    std::printf("all definitions proven sound\n");
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

/// The shared check-gate-optimize front half of `opt` and `run`.
/// Returns nullopt when the pipeline must not run (refusal or input
/// error); the exit code is then in \p Exit.
struct GatedPipeline {
  api::SuiteResult Summary;
  api::PipelineResult Pipeline;
  ir::Program Prog;
  unsigned Skipped = 0;
};

std::optional<GatedPipeline> gateAndOptimize(api::CobaltContext &Ctx,
                                             const char *ModulePath,
                                             const char *ProgramPath,
                                             const DriverOptions &Opts,
                                             int &Exit) {
  auto Module = Ctx.loadModuleFile(ModulePath);
  if (!Module) {
    std::fprintf(stderr, "%s\n", Module.error().str().c_str());
    Exit = ExitUsage;
    return std::nullopt;
  }
  auto Prog = Ctx.loadProgramFile(ProgramPath);
  if (!Prog) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath,
                 Prog.error().str().c_str());
    Exit = ExitUsage;
    return std::nullopt;
  }
  CobaltModule Defs = *Module;
  Ctx.addModule(std::move(*Module));

  if (!Opts.ReportJson)
    std::printf("== soundness gate ==\n");
  GatedPipeline G;
  G.Prog = std::move(*Prog);
  G.Summary = checkModule(Ctx, Defs, Opts, /*Quiet=*/Opts.ReportJson);

  size_t Total = Defs.Analyses.size() + Defs.Optimizations.size();
  size_t Proven = G.Summary.ProvenAnalyses.size() +
                  G.Summary.ProvenOptimizations.size();
  bool AllProven = G.Summary.Unsound == 0 && G.Summary.Unproven == 0 &&
                   Proven == Total;
  if (!AllProven && !Opts.KeepGoing) {
    std::fprintf(stderr,
                 "refusing to run: module contains %s definitions "
                 "(use --keep-going to apply the proven subset)\n",
                 G.Summary.Unsound > 0 ? "rejected" : "unproven");
    Exit = exitCodeFor(G.Summary, /*PipelineDegraded=*/false);
    return std::nullopt;
  }
  if (!AllProven && !Opts.ReportJson)
    std::printf("\n== keep-going: applying the proven subset only ==\n");
  G.Skipped = static_cast<unsigned>(Total - Proven);
  if (G.Skipped && !Opts.ReportJson)
    std::printf("  skipped %u unproven definition(s)\n", G.Skipped);

  if (!Opts.ReportJson)
    std::printf("\n== optimizing ==\n");
  G.Pipeline = Ctx.runPipeline(G.Prog, G.Summary.provenPassNames());
  if (!Opts.ReportJson) {
    for (const engine::PassReport &R : G.Pipeline.Reports) {
      if (R.AppliedCount)
        std::printf("  %-24s %-10s rewrote %u site(s)\n",
                    R.PassName.c_str(), R.ProcName.c_str(),
                    R.AppliedCount);
      if (R.failed())
        std::printf("  %-24s %-10s %s [%s]%s%s\n", R.PassName.c_str(),
                    R.ProcName.c_str(),
                    R.Quarantined ? "quarantined" : "FAILED",
                    R.Err.kindName(),
                    R.RolledBack ? ", rolled back" : "",
                    R.Err.Message.empty()
                        ? ""
                        : (": " + R.Err.Message).c_str());
    }
    std::printf("  total rewrites: %u\n", G.Pipeline.Applied);
  }
  Exit = exitCodeFor(G.Summary, G.Pipeline.Degraded);
  return G;
}

int cmdOpt(const char *ModulePath, const char *ProgramPath,
           const DriverOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  attachRemarks(Ctx, Opts);
  int Exit = ExitAllSound;
  auto G = gateAndOptimize(Ctx, ModulePath, ProgramPath, Opts, Exit);
  if (!G) {
    emitTelemetry(Ctx, Opts, nullptr);
    return Exit;
  }

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"opt\",\n";
    emitDefinitionsJson(Out, G->Summary.Reports);
    Out += ",\n";
    emitPipelineJson(Out, G->Pipeline.Reports);
    Out += ",\n  \"optimized_il\": \"" +
           jsonEscape(ir::toString(G->Prog)) + "\"";
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }
  std::printf("\n%s\n", ir::toString(G->Prog).c_str());
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

int cmdRun(const char *ModulePath, const char *ProgramPath,
           const char *InputText, const DriverOptions &Opts) {
  api::CobaltContext Ctx(Opts.Config);
  attachRemarks(Ctx, Opts);
  int Exit = ExitAllSound;

  // Keep the pristine program for the before/after comparison.
  auto Original = Ctx.loadProgramFile(ProgramPath);
  auto G = gateAndOptimize(Ctx, ModulePath, ProgramPath, Opts, Exit);
  if (!G) {
    emitTelemetry(Ctx, Opts, nullptr);
    return Exit;
  }
  if (!Original) {
    std::fprintf(stderr, "%s: %s\n", ProgramPath,
                 Original.error().str().c_str());
    return ExitUsage;
  }

  int64_t Input = InputText ? std::atoll(InputText) : 0;
  ir::Interpreter IO(*Original), IT(G->Prog);
  ir::RunResult RO = IO.run(Input), RT = IT.run(Input);

  if (Opts.ReportJson) {
    std::string Out = "{\n  \"command\": \"run\",\n";
    emitDefinitionsJson(Out, G->Summary.Reports);
    Out += ",\n";
    emitPipelineJson(Out, G->Pipeline.Reports);
    Out += ",\n  \"input\": " + std::to_string(Input);
    Out += ",\n  \"original_result\": \"" + jsonEscape(RO.str()) + "\"";
    Out += ",\n  \"optimized_result\": \"" + jsonEscape(RT.str()) + "\"";
    emitTelemetry(Ctx, Opts, &Out);
    Out += ",\n  \"exit\": " + std::to_string(Exit) + "\n}\n";
    std::fputs(Out.c_str(), stdout);
    return Exit;
  }

  std::printf("\n%s\n", ir::toString(G->Prog).c_str());
  std::printf("main(%lld): original %s, optimized %s\n",
              static_cast<long long>(Input), RO.str().c_str(),
              RT.str().c_str());
  emitTelemetry(Ctx, Opts, nullptr);
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  // Load any COBALT_FAULTS plan up front and surface it: silent fault
  // injection in a soundness tool would be a debugging nightmare.
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.empty())
    std::fprintf(stderr,
                 "cobaltc: fault injection active (COBALT_FAULTS)\n");

  if (Argc < 2)
    return usage();
  if (std::strcmp(Argv[1], "stdlib") == 0) {
    std::printf("%s", opts::StdlibCobaltSource);
    return 0;
  }

  DriverOptions Opts;
  std::vector<const char *> Positional;
  if (!parseFlags(Argc, Argv, Opts, Positional))
    return usage();

  if (!Positional.empty() && std::strcmp(Positional[0], "check") == 0 &&
      Positional.size() == 2)
    return cmdCheck(Positional[1], Opts);
  if (!Positional.empty() && std::strcmp(Positional[0], "opt") == 0 &&
      Positional.size() == 3)
    return cmdOpt(Positional[1], Positional[2], Opts);
  if (!Positional.empty() && std::strcmp(Positional[0], "run") == 0 &&
      (Positional.size() == 3 || Positional.size() == 4))
    return cmdRun(Positional[1], Positional[2],
                  Positional.size() == 4 ? Positional[3] : nullptr, Opts);
  return usage();
}
