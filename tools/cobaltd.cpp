//===- cobaltd.cpp - The Cobalt verification daemon -----------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Verification-as-a-service (DESIGN.md §13): load modules once, build
/// an immutable CobaltService, and serve check/run/stats requests over
/// an AF_UNIX socket until shutdown.
///
///   cobaltd <module.cob>... --socket <path> [flags]
///
/// A module path of "stdlib" loads the bundled standard module. Flags
/// come from the same table as cobaltc (tools/Flags.cpp):
///
///   --socket <path>        AF_UNIX socket to listen on (required)
///   --jobs <n>             service thread pool width (0 = hardware)
///   --cache-dir <dir>      two-tier verdict cache (hot tier + disk)
///   --max-inflight <n>     admission bound on concurrently proving
///                          obligations (0 = unbounded); over-bound
///                          requests get "retry" responses
///   --telemetry            keep a metrics session for "stats"
///   --prover-* / --worker-* / --isolate-workers / --degraded=
///                          prover policy, identical to cobaltc
///
/// On success prints one readiness line to stdout:
///
///   cobaltd: listening on <socket> (<N> definitions)
///
/// and serves until SIGINT/SIGTERM or a client "shutdown" request.
/// Exit: 0 clean shutdown, 2 usage/startup failure.
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/StdlibCobalt.h"
#include "service/Daemon.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"

#include "Flags.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cobalt;

namespace {

constexpr unsigned DaemonFlagSets =
    cli::FS_Core | cli::FS_Prover | cli::FS_Service;

int usage() {
  std::fprintf(stderr,
               "usage: cobaltd <module.cob>... --socket <path> [flags]\n"
               "       (a module path of \"stdlib\" loads the bundled "
               "module)\n"
               "%s"
               "exit:  0 clean shutdown; 2 usage/startup failure\n",
               cli::flagUsage(DaemonFlagSets).c_str());
  return 2;
}

/// Signal handling: handlers may only do async-signal-safe work, and
/// Daemon::requestStop is exactly that (one atomic store). The accept
/// loop polls the flag every 100 ms.
service::Daemon *ActiveDaemon = nullptr;

void onSignal(int) {
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

bool loadModuleInto(api::CobaltService::Builder &B, const char *Path) {
  std::string Text;
  if (std::strcmp(Path, "stdlib") == 0) {
    Text = opts::StdlibCobaltSource;
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cobaltd: cannot read '%s'\n", Path);
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }
  DiagnosticEngine Diags;
  std::optional<CobaltModule> Module = parseCobalt(Text, Diags);
  if (!Module) {
    std::fprintf(stderr, "cobaltd: %s: %s\n", Path, Diags.str().c_str());
    return false;
  }
  B.addModule(std::move(*Module));
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.empty())
    std::fprintf(stderr,
                 "cobaltd: fault injection active (COBALT_FAULTS)\n");

  cli::CommonOptions Opts;
  std::vector<const char *> Positional;
  if (!cli::parseFlags(Argc, Argv, "cobaltd", DaemonFlagSets, Opts,
                       Positional))
    return usage();
  if (Positional.empty()) {
    std::fprintf(stderr, "cobaltd: no modules given\n");
    return usage();
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "cobaltd: --socket is required\n");
    return usage();
  }

  api::CobaltService::Builder B;
  B.config(Opts.Config);
  for (const char *Path : Positional)
    if (!loadModuleInto(B, Path))
      return 2;
  std::shared_ptr<api::CobaltService> Svc = B.build();

  service::Daemon D(Svc, Opts.SocketPath);
  if (support::Error E = D.start(); E.failed()) {
    std::fprintf(stderr, "cobaltd: %s\n", E.str().c_str());
    return 2;
  }
  ActiveDaemon = &D;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // SIGPIPE would kill the daemon when a client disconnects mid-write.
  std::signal(SIGPIPE, SIG_IGN);

  // The readiness line: scripts (and the test suite) wait for it before
  // connecting, so flush immediately.
  std::printf("cobaltd: listening on %s (%zu definitions)\n",
              D.socketPath().c_str(), Svc->definitionCount());
  std::fflush(stdout);

  D.wait();
  D.stop();
  ActiveDaemon = nullptr;
  std::printf("cobaltd: stopped\n");
  return 0;
}
