//===- cobaltd.cpp - The Cobalt verification daemon -----------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Verification-as-a-service (DESIGN.md §13): load modules once, build
/// an immutable CobaltService, and serve check/run/stats requests over
/// an AF_UNIX socket until shutdown.
///
///   cobaltd <module.cob>... --socket <path> [flags]
///
/// A module path of "stdlib" loads the bundled standard module. Flags
/// come from the same table as cobaltc (tools/Flags.cpp):
///
///   --socket <path>        AF_UNIX socket to listen on (required)
///   --jobs <n>             service thread pool width (0 = hardware)
///   --cache-dir <dir>      two-tier verdict cache (hot tier + disk)
///   --max-inflight <n>     admission bound on concurrently proving
///                          obligations (0 = unbounded); over-bound
///                          requests get "retry" responses
///   --telemetry            keep a metrics session for "stats"
///   --trace-out=FILE       write the daemon's lifetime Chrome trace on
///                          clean shutdown (implies --telemetry)
///   --metrics-out=FILE     write the lifetime metrics registry as JSON
///                          on clean shutdown (implies --telemetry)
///   --flight-recorder=FILE flight-recorder black box: dumped here on
///                          worker quarantine, SIGINT/SIGTERM, and
///                          explicit "dump" frames (implies --telemetry)
///   --flight-events=<n>    flight-recorder ring capacity (default 1024)
///   --prover-* / --worker-* / --isolate-workers / --degraded=
///                          prover policy, identical to cobaltc
///
/// On success prints one readiness line to stdout:
///
///   cobaltd: listening on <socket> (<N> definitions)
///
/// and serves until SIGINT/SIGTERM or a client "shutdown" request.
/// Exit: 0 clean shutdown, 2 usage/startup failure.
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/StdlibCobalt.h"
#include "service/Daemon.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"

#include "Flags.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cobalt;

namespace {

constexpr unsigned DaemonFlagSets =
    cli::FS_Core | cli::FS_Prover | cli::FS_Service | cli::FS_Telemetry;

int usage() {
  std::fprintf(stderr,
               "usage: cobaltd <module.cob>... --socket <path> [flags]\n"
               "       (a module path of \"stdlib\" loads the bundled "
               "module)\n"
               "%s"
               "exit:  0 clean shutdown; 2 usage/startup failure\n",
               cli::flagUsage(DaemonFlagSets).c_str());
  return 2;
}

/// Signal handling: handlers may only do async-signal-safe work, and
/// Daemon::requestStop is exactly that (one atomic store). The accept
/// loop polls the flag every 100 ms. SignalStop distinguishes a
/// signal-initiated shutdown (flight recorder dumped: something outside
/// decided to kill us) from a client "shutdown" frame (clean).
service::Daemon *ActiveDaemon = nullptr;
volatile std::sig_atomic_t SignalStop = 0;

void onSignal(int) {
  SignalStop = 1;
  if (ActiveDaemon)
    ActiveDaemon->requestStop();
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  return (std::fclose(F) == 0) && Ok;
}

bool loadModuleInto(api::CobaltService::Builder &B, const char *Path) {
  std::string Text;
  if (std::strcmp(Path, "stdlib") == 0) {
    Text = opts::StdlibCobaltSource;
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cobaltd: cannot read '%s'\n", Path);
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Text = Buf.str();
  }
  DiagnosticEngine Diags;
  std::optional<CobaltModule> Module = parseCobalt(Text, Diags);
  if (!Module) {
    std::fprintf(stderr, "cobaltd: %s: %s\n", Path, Diags.str().c_str());
    return false;
  }
  B.addModule(std::move(*Module));
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.empty())
    std::fprintf(stderr,
                 "cobaltd: fault injection active (COBALT_FAULTS)\n");

  cli::CommonOptions Opts;
  std::vector<const char *> Positional;
  if (!cli::parseFlags(Argc, Argv, "cobaltd", DaemonFlagSets, Opts,
                       Positional))
    return usage();
  if (Positional.empty()) {
    std::fprintf(stderr, "cobaltd: no modules given\n");
    return usage();
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "cobaltd: --socket is required\n");
    return usage();
  }

  api::CobaltService::Builder B;
  B.config(Opts.Config);
  for (const char *Path : Positional)
    if (!loadModuleInto(B, Path))
      return 2;
  std::shared_ptr<api::CobaltService> Svc = B.build();
  if (support::Telemetry *T = Svc->telemetry())
    if (Opts.FlightEvents != 0)
      T->Flight.setCapacity(Opts.FlightEvents);

  service::Daemon D(Svc, Opts.SocketPath);
  D.setFlightRecorderPath(Opts.FlightOut);
  if (support::Error E = D.start(); E.failed()) {
    std::fprintf(stderr, "cobaltd: %s\n", E.str().c_str());
    return 2;
  }
  ActiveDaemon = &D;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // SIGPIPE would kill the daemon when a client disconnects mid-write.
  std::signal(SIGPIPE, SIG_IGN);

  // The readiness line: scripts (and the test suite) wait for it before
  // connecting, so flush immediately.
  std::printf("cobaltd: listening on %s (%zu definitions)\n",
              D.socketPath().c_str(), Svc->definitionCount());
  std::fflush(stdout);

  D.wait();
  // Black-box dump *before* stop(): a SIGTERM post-mortem wants the
  // events as they stood when the signal arrived, not after teardown
  // traffic. (Quarantine and "dump"-frame dumps happen inline.)
  if (SignalStop)
    D.dumpFlightRecorder("signal");
  D.stop();
  ActiveDaemon = nullptr;

  // Lifetime telemetry (satellite of the PR-6 daemon: these flags were
  // silently accepted-and-ignored before). Failures warn and never
  // change the exit code.
  if (!Opts.TraceOut.empty() || !Opts.MetricsOut.empty()) {
    support::Telemetry *T = Svc->telemetry();
    std::string Trace =
        T ? T->Trace.json() : std::string("{\"traceEvents\": []}\n");
    std::string Metrics =
        T ? T->Metrics.json() : support::MetricsRegistry().json();
    if (!Opts.TraceOut.empty() && !writeTextFile(Opts.TraceOut, Trace))
      std::fprintf(stderr, "cobaltd: warning: cannot write trace to '%s'\n",
                   Opts.TraceOut.c_str());
    if (!Opts.MetricsOut.empty() &&
        !writeTextFile(Opts.MetricsOut, Metrics))
      std::fprintf(stderr,
                   "cobaltd: warning: cannot write metrics to '%s'\n",
                   Opts.MetricsOut.c_str());
  }
  std::printf("cobaltd: stopped\n");
  return 0;
}
