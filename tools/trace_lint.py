#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace-out.

Checks, in order:

 1. The file is well-formed JSON: a top-level object whose
    "traceEvents" member is a list.
 2. Every event is an object with a string "name" and a one-char "ph";
    only "X" (complete) and "M" (metadata) events are expected.
 3. "X" events carry numeric non-negative "ts"/"dur" and integer
    "pid"/"tid"; "args", when present, maps strings to strings.
 4. "M" events are thread_name rows naming each lane exactly once per
    (pid, tid), or process_name rows naming each pid exactly once.
 5. Merged multi-process traces (prover-worker spans imported across
    the fork) carry a process_name row for every pid that owns "X"
    events — a foreign pid without one renders as an anonymous track.
 6. Spans nest properly per lane: since every span comes from an RAII
    scope on one thread, two spans on the same (pid, tid) lane either
    are disjoint or one fully contains the other. Partial overlap is a
    recorder bug. Lanes are keyed per process, so imported worker spans
    are swept independently of the parent's threads.

Exit status: 0 clean, 1 lint errors, 2 cannot read/parse the input.

Usage: trace_lint.py FILE [FILE...]
"""

import json
import sys


def lint_events(path, doc, errors):
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        errors.append(f"{path}: top level must be an object with a "
                      "'traceEvents' list")
        return

    lanes = {}  # (pid, tid) -> list of (ts, dur, name)
    named_lanes = set()
    named_pids = set()
    event_pids = set()
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name, ph = ev.get("name"), ev.get("ph")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty 'name'")
            continue
        if ph == "M":
            if name == "process_name":
                pid = ev.get("pid")
                if not isinstance(pid, int):
                    errors.append(f"{where}: process_name needs an "
                                  "integer pid")
                    continue
                if pid in named_pids:
                    errors.append(f"{where}: pid {pid} named twice")
                named_pids.add(pid)
                args = ev.get("args")
                if not (isinstance(args, dict)
                        and isinstance(args.get("name"), str)):
                    errors.append(f"{where}: process_name needs args.name")
                continue
            if name != "thread_name":
                errors.append(f"{where}: unexpected metadata row '{name}'")
                continue
            key = (ev.get("pid"), ev.get("tid"))
            if key in named_lanes:
                errors.append(f"{where}: lane {key} named twice")
            named_lanes.add(key)
            args = ev.get("args")
            if not (isinstance(args, dict) and isinstance(args.get("name"), str)):
                errors.append(f"{where}: thread_name needs args.name")
            continue
        if ph != "X":
            errors.append(f"{where} ('{name}'): unexpected ph {ph!r}")
            continue
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where} ('{name}'): bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"{where} ('{name}'): bad dur {dur!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            errors.append(f"{where} ('{name}'): pid/tid must be integers")
            continue
        args = ev.get("args", {})
        if not isinstance(args, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in args.items()):
            errors.append(f"{where} ('{name}'): args must map strings "
                          "to strings")
        event_pids.add(ev["pid"])
        lanes.setdefault((ev["pid"], ev["tid"]), []).append((ts, dur, name))

    # Multi-process merge: every pid owning spans must be introduced by a
    # process_name row, or the viewer shows an anonymous track. (Traces
    # with process_name rows opt into the check; a bare single-process
    # trace without any remains valid.)
    if named_pids:
        for pid in sorted(event_pids - named_pids):
            errors.append(f"{path}: pid {pid} has spans but no "
                          "process_name metadata row")

    # Nesting: sweep each lane by (start, -dur) so an enclosing span sorts
    # before the spans it contains; a stack then only ever sees proper
    # containment. Anything else partially overlaps.
    for lane, spans in sorted(lanes.items()):
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []  # (end, name)
        for ts, dur, name in spans:
            end = ts + dur
            while stack and ts >= stack[-1][0]:
                stack.pop()
            if stack and end > stack[-1][0]:
                errors.append(
                    f"{path}: lane {lane}: span '{name}' [{ts}, {end}) "
                    f"partially overlaps '{stack[-1][1]}' (ends "
                    f"{stack[-1][0]}) — spans must nest")
            stack.append((end, name))


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    total = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as fp:
                doc = json.load(fp)
        except (OSError, json.JSONDecodeError) as err:
            print(f"trace_lint: {path}: {err}", file=sys.stderr)
            return 2
        lint_events(path, doc, errors)
        if isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
            total += sum(1 for ev in doc["traceEvents"]
                         if isinstance(ev, dict) and ev.get("ph") == "X")
    for message in errors:
        print(f"trace_lint: {message}", file=sys.stderr)
    if errors:
        return 1
    print(f"trace_lint: OK ({total} span(s) across {len(argv) - 1} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
