//===- cobalt-fuzz.cpp - Differential fuzzing driver ----------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Differential fuzzing harness over the CobaltContext facade
/// (DESIGN.md §11):
///
///   cobalt-fuzz [flags]
///
///   --suite=NAME        sound | buggy | mutants | all (default buggy)
///   --seed <n>          base seed; run I is fully determined by seed+I
///   --runs <n>          generated programs (default 200)
///   --time-budget <s>   stop after this many seconds (batch-granular;
///                       0 = none). The JSON never contains wall-clock,
///                       so a completed fixed---runs campaign is
///                       bit-identical at every --jobs width.
///   --jobs <n>          thread-pool width (1 = sequential, 0 = one per
///                       hardware thread); never changes the results
///   --minimize / --no-minimize
///                       delta-debug findings (default on)
///   --mutants <n>       single-edit program mutants per seed (default 2)
///   --corpus-dir <dir>  write minimized reproducers + manifest there
///   --check             recompute verdicts with the live checker
///                       instead of trusting the documented ones — the
///                       full checker-cross-check mode
///   --require-expected  exit 1 unless every observable seeded bug
///                       produced a divergence (the CI smoke assertion)
///   --validate          adversarial translation-validation mode
///                       (DESIGN.md §14): miscompile generated programs
///                       with the selected rule suite, validate each
///                       (original, miscompiled) pair, and cross-check
///                       the verdict against the differential
///                       interpreter. A divergent pair verdicted
///                       Equivalent ("blessed miscompile") exits 1. With
///                       --corpus-dir, retained pairs are written as
///                       .orig.il/.cand.il files plus a manifest; with
///                       --minimize they are delta-debugged first (and
///                       re-validated — reduction must not flip a verdict
///                       to Equivalent).
///   --trace-out=FILE / --metrics-out=FILE
///                       telemetry dumps, as in cobaltc
///
/// Prints a JSON summary on stdout; throughput (which carries wall-clock
/// noise) goes to stderr.
///
/// Exit codes:
///   0  no checker-missed divergence (and --require-expected satisfied)
///   1  a divergence on a rule the checker calls Sound — a checker
///      soundness bug, the headline failure — or a missing expected one
///   2  usage / I/O error
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "ir/Printer.h"
#include "support/FaultInjection.h"
#include "validate/Adversary.h"

#include <chrono>
#include <set>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace cobalt;

namespace {

enum ExitCode { ExitClean = 0, ExitFailure = 1, ExitUsage = 2 };

int usage() {
  std::fprintf(
      stderr,
      "usage: cobalt-fuzz [flags]\n"
      "flags: --suite=[sound|buggy|mutants|all]  --seed <n>  --runs <n>\n"
      "       --time-budget <seconds>  --jobs <n>\n"
      "       --minimize | --no-minimize  --mutants <n>\n"
      "       --corpus-dir <dir>  --check  --require-expected\n"
      "       --validate  attack the translation validator instead of the\n"
      "                   checker: miscompile with the buggy rule suite,\n"
      "                   cross-check each verdict against the\n"
      "                   differential-interpreter ground truth\n"
      "       --trace-out=FILE  --metrics-out=FILE\n"
      "exit:  0 clean; 1 checker-missed divergence, missing expected\n"
      "       divergence, or (--validate) a validator-blessed miscompile;\n"
      "       2 usage/input error\n");
  return ExitUsage;
}

struct Options {
  std::string Suite = "buggy";
  fuzz::FuzzOptions Fuzz;
  unsigned Jobs = 1;
  std::string CorpusDir;
  bool Check = false;
  bool RequireExpected = false;
  bool Validate = false;
  std::string TraceOut, MetricsOut;
};

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  Opts.Fuzz.Runs = 200;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto TakesValue = [&](const char *Flag, const char *&Out) {
      if (std::strcmp(Arg, Flag) != 0)
        return false;
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "cobalt-fuzz: %s requires a value\n", Flag);
        Out = nullptr;
        return true;
      }
      Out = Argv[++I];
      return true;
    };
    auto ValueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return std::strncmp(Arg, Prefix, Len) == 0 ? Arg + Len : nullptr;
    };
    const char *Value = nullptr;
    if (TakesValue("--seed", Value)) {
      if (!Value)
        return false;
      Opts.Fuzz.Seed = std::strtoull(Value, nullptr, 10);
    } else if (TakesValue("--runs", Value)) {
      if (!Value)
        return false;
      Opts.Fuzz.Runs = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    } else if (TakesValue("--time-budget", Value)) {
      if (!Value)
        return false;
      Opts.Fuzz.TimeBudgetSec = std::strtod(Value, nullptr);
    } else if (TakesValue("--jobs", Value)) {
      if (!Value)
        return false;
      Opts.Jobs = static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    } else if (TakesValue("--mutants", Value)) {
      if (!Value)
        return false;
      Opts.Fuzz.MutantsPerProgram =
          static_cast<unsigned>(std::strtoul(Value, nullptr, 10));
    } else if (TakesValue("--corpus-dir", Value)) {
      if (!Value)
        return false;
      Opts.CorpusDir = Value;
    } else if (const char *V = ValueOf("--suite=")) {
      Opts.Suite = V;
      if (Opts.Suite != "sound" && Opts.Suite != "buggy" &&
          Opts.Suite != "mutants" && Opts.Suite != "all") {
        std::fprintf(stderr, "cobalt-fuzz: unknown suite '%s'\n", V);
        return false;
      }
    } else if (std::strcmp(Arg, "--minimize") == 0) {
      Opts.Fuzz.Minimize = true;
    } else if (std::strcmp(Arg, "--no-minimize") == 0) {
      Opts.Fuzz.Minimize = false;
    } else if (std::strcmp(Arg, "--check") == 0) {
      Opts.Check = true;
    } else if (std::strcmp(Arg, "--require-expected") == 0) {
      Opts.RequireExpected = true;
    } else if (std::strcmp(Arg, "--validate") == 0) {
      Opts.Validate = true;
    } else if (const char *V = ValueOf("--trace-out=")) {
      Opts.TraceOut = V;
    } else if (const char *V = ValueOf("--metrics-out=")) {
      Opts.MetricsOut = V;
    } else {
      std::fprintf(stderr, "cobalt-fuzz: unknown argument '%s'\n", Arg);
      return false;
    }
  }
  return true;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::vector<fuzz::FuzzTarget> assembleTargets(const std::string &Suite) {
  std::vector<fuzz::FuzzTarget> Targets;
  auto Append = [&](std::vector<fuzz::FuzzTarget> More) {
    for (fuzz::FuzzTarget &T : More)
      Targets.push_back(std::move(T));
  };
  if (Suite == "sound" || Suite == "all")
    Append(fuzz::soundSuiteTargets());
  if (Suite == "buggy" || Suite == "all")
    Append(fuzz::buggySuiteTargets());
  if (Suite == "mutants" || Suite == "all")
    Append(fuzz::ruleMutantTargets());
  return Targets;
}

/// --check: replace each target's documented verdict with the live
/// checker's. Any disagreement is itself reported — the checker oracle
/// covering the *verdict* side of the contract.
void recomputeVerdicts(api::CobaltContext &Ctx,
                       std::vector<fuzz::FuzzTarget> &Targets) {
  std::set<std::string> Registered;
  for (fuzz::FuzzTarget &T : Targets) {
    for (const PureAnalysis &A : T.Analyses)
      if (Registered.insert(A.Name).second)
        Ctx.addAnalysis(A);
    checker::CheckReport R = Ctx.check(T.Opt);
    if (R.V != T.Verdict)
      std::fprintf(stderr,
                   "cobalt-fuzz: note: checker says %s for %s "
                   "(documented %s)\n",
                   fuzz::verdictName(R.V), T.Opt.Name.c_str(),
                   fuzz::verdictName(T.Verdict));
    T.Verdict = R.V;
  }
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  return (std::fclose(F) == 0) && Ok;
}

/// The JSON summary. Deliberately wall-clock-free: every value is a
/// deterministic function of (suite, seed, runs, targets), so CI can
/// byte-compare dumps across --jobs widths.
std::string summaryJson(const Options &Opts, const fuzz::FuzzSummary &Sum,
                        const std::vector<std::string> &MissingExpected) {
  std::string Out = "{\n";
  Out += "  \"suite\": \"" + jsonEscape(Opts.Suite) + "\",\n";
  Out += "  \"seed\": " + std::to_string(Sum.Seed) + ",\n";
  Out += "  \"runs_requested\": " + std::to_string(Sum.RunsRequested) + ",\n";
  Out += "  \"runs_executed\": " + std::to_string(Sum.RunsExecuted) + ",\n";
  Out += "  \"timed_out\": " + std::string(Sum.TimedOut ? "true" : "false") +
         ",\n";
  Out += "  \"pairs_diffed\": " + std::to_string(Sum.PairsDiffed) + ",\n";
  Out += "  \"divergences\": " + std::to_string(Sum.Divergences) + ",\n";
  Out += "  \"caught_by_checker\": " + std::to_string(Sum.CaughtByChecker) +
         ",\n";
  Out += "  \"checker_missed\": " + std::to_string(Sum.CheckerMissed) + ",\n";
  Out += "  \"missing_expected\": [";
  for (size_t I = 0; I < MissingExpected.size(); ++I) {
    if (I)
      Out += ", ";
    Out += "\"" + jsonEscape(MissingExpected[I]) + "\"";
  }
  Out += "],\n  \"per_rule\": {";
  bool First = true;
  for (const auto &[Rule, RS] : Sum.PerRule) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Rule) +
           "\": {\"applications\": " + std::to_string(RS.Applications) +
           ", \"divergences\": " + std::to_string(RS.Divergences) + "}";
  }
  Out += "\n  },\n  \"findings\": [";
  for (size_t I = 0; I < Sum.Findings.size(); ++I) {
    const fuzz::FuzzFinding &F = Sum.Findings[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"rule\": \"" + jsonEscape(F.Rule) + "\"";
    Out += ", \"seed\": " + std::to_string(F.Seed);
    Out += ", \"from_mutant\": " + std::string(F.FromMutant ? "true" : "false");
    Out += ", \"input\": " + std::to_string(F.Div.Input);
    Out += ", \"kind\": \"" + std::string(F.Div.kindName()) + "\"";
    Out += ", \"verdict\": \"" + std::string(fuzz::verdictName(F.Verdict)) +
           "\"";
    Out += ", \"check\": \"" + std::string(fuzz::crossCheckName(F.Check)) +
           "\"";
    Out += ", \"stmts_before\": " + std::to_string(F.StatementsBefore);
    Out += ", \"stmts_after\": " + std::to_string(F.StatementsAfter);
    Out += ", \"reduce_rounds\": " + std::to_string(F.ReduceRounds);
    Out += ", \"reduce_fixpoint\": " +
           std::string(F.ReduceFixpoint ? "true" : "false");
    Out += ", \"narrowed_site\": " + std::to_string(F.NarrowedSite);
    Out += ", \"program\": \"" + jsonEscape(ir::toString(F.Original)) + "\"";
    Out += "}";
  }
  Out += "\n  ]\n}\n";
  return Out;
}

/// The --validate summary. Wall-clock-free for the same reason as
/// summaryJson: a fixed (seed, runs) campaign is byte-identical across
/// machines and --jobs widths.
std::string adversaryJson(const Options &Opts,
                          const validate::AdversarySummary &Sum) {
  std::string Out = "{\n";
  Out += "  \"mode\": \"validate\",\n";
  Out += "  \"suite\": \"" + jsonEscape(Opts.Suite) + "\",\n";
  Out += "  \"seed\": " + std::to_string(Sum.Seed) + ",\n";
  Out += "  \"runs_requested\": " + std::to_string(Sum.RunsRequested) + ",\n";
  Out += "  \"runs_executed\": " + std::to_string(Sum.RunsExecuted) + ",\n";
  Out += "  \"pairs_validated\": " + std::to_string(Sum.PairsValidated) +
         ",\n";
  Out += "  \"diverged\": " + std::to_string(Sum.Diverged) + ",\n";
  Out += "  \"caught\": " + std::to_string(Sum.Caught) + ",\n";
  Out += "  \"missed_unknown\": " + std::to_string(Sum.MissedUnknown) + ",\n";
  Out += "  \"extended_catch\": " + std::to_string(Sum.ExtendedCatch) + ",\n";
  Out += "  \"agree\": " + std::to_string(Sum.Agree) + ",\n";
  Out += "  \"unproven\": " + std::to_string(Sum.Unproven) + ",\n";
  Out += "  \"blessed_miscompiles\": " + std::to_string(Sum.Blessed) + ",\n";
  Out += "  \"per_rule\": {";
  bool First = true;
  for (const auto &[Rule, RS] : Sum.PerRule) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Rule) +
           "\": {\"applications\": " + std::to_string(RS.Applications) +
           ", \"diverged\": " + std::to_string(RS.Diverged) +
           ", \"caught\": " + std::to_string(RS.Caught) +
           ", \"missed_unknown\": " + std::to_string(RS.MissedUnknown) +
           ", \"extended_catch\": " + std::to_string(RS.ExtendedCatch) +
           ", \"blessed\": " + std::to_string(RS.Blessed) + "}";
  }
  Out += "\n  },\n  \"pairs\": [";
  for (size_t I = 0; I < Sum.Pairs.size(); ++I) {
    const validate::AdversaryPair &P = Sum.Pairs[I];
    Out += I ? ",\n    {" : "\n    {";
    Out += "\"rule\": \"" + jsonEscape(P.Rule) + "\"";
    Out += ", \"seed\": " + std::to_string(P.Seed);
    Out += ", \"class\": \"" +
           std::string(validate::adversaryClassName(P.Class)) + "\"";
    Out += ", \"verdict\": \"" + std::string(validate::verdictName(P.V)) +
           "\"";
    if (!P.Witness.empty())
      Out += ", \"witness\": \"" + jsonEscape(P.Witness) + "\"";
    Out += ", \"stmts_before\": " + std::to_string(P.StatementsBefore);
    Out += ", \"stmts_after\": " + std::to_string(P.StatementsAfter);
    Out += ", \"reduce_rounds\": " + std::to_string(P.ReduceRounds);
    Out += "}";
  }
  Out += "\n  ]\n}\n";
  return Out;
}

/// `cobalt-fuzz --validate`: the adversarial campaign of DESIGN.md §14.
/// The fuzzer switches sides — instead of probing the checker it
/// miscompiles programs and tries to sneak them past the validator.
int runValidateMode(const Options &Opts, api::CobaltContext &Ctx,
                    const std::vector<fuzz::FuzzTarget> &Targets) {
  validate::AdversaryOptions AO;
  AO.Seed = Opts.Fuzz.Seed;
  AO.Runs = Opts.Fuzz.Runs;
  AO.Minimize = Opts.Fuzz.Minimize;

  const auto Start = std::chrono::steady_clock::now();
  validate::AdversarySummary Sum =
      validate::runAdversary(Targets, AO, Ctx.service()->prover());
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  if (!Opts.CorpusDir.empty())
    if (auto Err = validate::saveValidationCorpus(Opts.CorpusDir, Sum.Pairs)) {
      std::fprintf(stderr, "cobalt-fuzz: %s\n", Err->c_str());
      return ExitUsage;
    }

  std::fprintf(stderr,
               "cobalt-fuzz: --validate: %u run(s), %llu pair(s) validated "
               "in %.2f s, %u divergent (caught %u, unknown %u, extended "
               "%u), %u blessed\n",
               Sum.RunsExecuted,
               static_cast<unsigned long long>(Sum.PairsValidated), Elapsed,
               Sum.Diverged, Sum.Caught, Sum.MissedUnknown,
               Sum.ExtendedCatch, Sum.Blessed);

  std::fputs(adversaryJson(Opts, Sum).c_str(), stdout);

  if (Sum.Blessed > 0) {
    std::fprintf(stderr,
                 "cobalt-fuzz: FAILURE: %u validator-blessed "
                 "miscompile(s) — the validator called a divergent pair "
                 "Equivalent\n",
                 Sum.Blessed);
    return ExitFailure;
  }
  return ExitClean;
}

} // namespace

int main(int Argc, char **Argv) {
  support::FaultInjector &FI = support::FaultInjector::instance();
  if (!FI.empty())
    std::fprintf(stderr,
                 "cobalt-fuzz: fault injection active (COBALT_FAULTS)\n");

  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  api::CobaltConfig Config;
  Config.Jobs = Opts.Jobs;
  Config.Telemetry =
      (!Opts.TraceOut.empty() || !Opts.MetricsOut.empty()) &&
      support::telemetryCompiledIn();
  if (Opts.Validate) {
    // The adversary measures verdict *safety*, not proof completeness:
    // Unknown is an acceptable outcome, so unprovable obligations must
    // fail fast rather than burn the full escalating-retry ladder
    // (2s/10s/30s per obligation would make a campaign take hours).
    Config.Prover.InitialTimeoutMs = 500;
    Config.Prover.TimeoutMs = 2000;
    Config.Prover.Retries = 1;
    Config.Prover.BudgetMs = 10000;
  }
  api::CobaltContext Ctx(Config);

  std::vector<fuzz::FuzzTarget> Targets = assembleTargets(Opts.Suite);
  if (Opts.Check)
    recomputeVerdicts(Ctx, Targets);

  if (Opts.Validate)
    return runValidateMode(Opts, Ctx, Targets);

  const auto Start = std::chrono::steady_clock::now();
  fuzz::FuzzSummary Sum = Ctx.runFuzz(Targets, Opts.Fuzz);
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  std::vector<std::string> MissingExpected;
  for (const fuzz::FuzzTarget &T : Targets)
    if (T.ExpectDivergence && Sum.PerRule.at(T.Opt.Name).Divergences == 0)
      MissingExpected.push_back(T.Opt.Name);

  if (!Opts.CorpusDir.empty())
    if (auto Err = fuzz::saveCorpus(Opts.CorpusDir, Sum.Findings)) {
      std::fprintf(stderr, "cobalt-fuzz: %s\n", Err->c_str());
      return ExitUsage;
    }

  if (support::Telemetry *T = Ctx.telemetry()) {
    if (!Opts.TraceOut.empty() &&
        !writeTextFile(Opts.TraceOut, T->Trace.json()))
      std::fprintf(stderr, "cobalt-fuzz: warning: cannot write '%s'\n",
                   Opts.TraceOut.c_str());
    if (!Opts.MetricsOut.empty() &&
        !writeTextFile(Opts.MetricsOut, T->Metrics.json()))
      std::fprintf(stderr, "cobalt-fuzz: warning: cannot write '%s'\n",
                   Opts.MetricsOut.c_str());
  }

  // Throughput carries wall-clock noise: stderr only, never the JSON.
  std::fprintf(stderr,
               "cobalt-fuzz: %u run(s), %llu pair(s) diffed in %.2f s "
               "(%.0f execs/s), %u divergence(s), %zu finding(s)\n",
               Sum.RunsExecuted,
               static_cast<unsigned long long>(Sum.PairsDiffed), Elapsed,
               Elapsed > 0 ? 2.0 * static_cast<double>(Sum.PairsDiffed) *
                                 7.0 / Elapsed
                           : 0.0,
               Sum.Divergences, Sum.Findings.size());

  std::fputs(summaryJson(Opts, Sum, MissingExpected).c_str(), stdout);

  if (Sum.CheckerMissed > 0) {
    std::fprintf(stderr,
                 "cobalt-fuzz: FAILURE: %u divergence(s) on checker-Sound "
                 "rules\n",
                 Sum.CheckerMissed);
    return ExitFailure;
  }
  if (Opts.RequireExpected && !MissingExpected.empty()) {
    std::fprintf(stderr,
                 "cobalt-fuzz: FAILURE: %zu seeded bug(s) produced no "
                 "divergence\n",
                 MissingExpected.size());
    return ExitFailure;
  }
  return ExitClean;
}
