//===- Flags.h - Table-driven flags shared by the Cobalt tools -*- C++ -*-===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One flag table for cobaltc, cobaltd, and `cobaltc client`, so the
/// three entry points cannot drift: `--jobs`, `--cache-dir`,
/// `--worker-*`, `--degraded=`, ... are parsed by the same rows with the
/// same validation everywhere. Each tool selects the *subsets* it
/// accepts (FlagSet); unknown or out-of-set flags fail parsing with the
/// tool's name in the message, and usage text is generated from the
/// same table.
///
//===----------------------------------------------------------------------===//

#ifndef COBALT_TOOLS_FLAGS_H
#define COBALT_TOOLS_FLAGS_H

#include "api/Service.h"

#include <string>
#include <vector>

namespace cobalt {
namespace cli {

/// Everything any of the tools can be configured with. Tools read only
/// the fields their flag sets can populate.
struct CommonOptions {
  api::CobaltConfig Config;
  bool FailFast = false;
  bool KeepGoing = false;
  bool ReportJson = false;
  std::string TraceOut;
  std::string MetricsOut;
  /// cobaltd: flight-recorder dump file (--flight-recorder=); written on
  /// worker quarantine, SIGTERM, and explicit "dump" frames.
  std::string FlightOut;
  /// cobaltd: flight-recorder ring capacity (--flight-events=);
  /// 0 = the recorder's default.
  unsigned FlightEvents = 0;
  enum class RemarkLevel { RL_None, RL_Missed, RL_All };
  RemarkLevel Remarks = RemarkLevel::RL_None;
  /// cobaltd / cobaltc client: the AF_UNIX socket path.
  std::string SocketPath;
  /// cobaltc client: per-response wait bound in ms (0 = forever).
  int64_t DeadlineMs = 30000;
  /// cobaltc client: definition subset for check / pass subset for run.
  std::vector<std::string> Only;
  /// cobaltd: enable the telemetry session (counters behind "stats").
  bool Telemetry = false;
};

/// Flag groups a tool opts into (bitwise-or).
enum FlagSet : unsigned {
  FS_Core = 1u << 0,      ///< --jobs, --cache-dir
  FS_Prover = 1u << 1,    ///< --prover-*, --isolate-workers, --worker-*,
                          ///< --degraded=
  FS_Driver = 1u << 2,    ///< --fail-fast, --keep-going, --report=json,
                          ///< --remarks=
  FS_Telemetry = 1u << 3, ///< --trace-out=, --metrics-out=,
                          ///< --flight-recorder=, --flight-events=
  FS_Service = 1u << 4,   ///< --socket, --max-inflight, --telemetry
  FS_Client = 1u << 5,    ///< --deadline, --only
};

/// Strips and parses the flags in \p Sets from Argv[1..); leaves
/// positional arguments in \p Positional. On a malformed, unknown, or
/// out-of-set flag, prints "<tool>: ..." to stderr and returns false.
/// Sets Config.Prover.TimeoutMs to the CLI default (8000) before
/// parsing, and auto-enables Config.Telemetry when --trace-out=/
/// --metrics-out= were given (warning when telemetry is compiled out).
bool parseFlags(int Argc, char **Argv, const char *Tool, unsigned Sets,
                CommonOptions &Opts,
                std::vector<const char *> &Positional);

/// Usage lines ("       --jobs <n>  ...") for the flags in \p Sets,
/// generated from the table.
std::string flagUsage(unsigned Sets);

} // namespace cli
} // namespace cobalt

#endif // COBALT_TOOLS_FLAGS_H
