//===- Flags.cpp ----------------------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "Flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace cobalt;
using namespace cobalt::cli;

namespace {

/// How a flag takes its value.
enum class Style {
  S_Bool,     ///< --flag
  S_SepValue, ///< --flag <value>
  S_EqValue,  ///< --flag=<value>
};

struct FlagRow {
  const char *Name;   ///< Including "--"; for S_EqValue, including "=".
  Style St;
  unsigned Set;       ///< FlagSet membership.
  const char *Help;   ///< Short operand hint for usage ("<n>", "MODE").
  /// Applies the (possibly empty) value. Returns false with \p Err set
  /// on a malformed value.
  bool (*Apply)(CommonOptions &Opts, const char *Value, std::string &Err);
};

bool parseU64(const char *Value, unsigned long long &Out) {
  if (!Value || !*Value)
    return false;
  char *End = nullptr;
  Out = std::strtoull(Value, &End, 10);
  return End && *End == '\0';
}

template <typename T>
bool applyUInt(const char *Value, T &Field, std::string &Err,
               const char *What, bool AllowZero = true) {
  unsigned long long V = 0;
  if (!parseU64(Value, V) || (!AllowZero && V == 0)) {
    Err = std::string(What) + " requires a " +
          (AllowZero ? "number" : "positive number");
    return false;
  }
  Field = static_cast<T>(V);
  return true;
}

const FlagRow Rows[] = {
    // FS_Core ------------------------------------------------------------
    {"--jobs", Style::S_SepValue, FS_Core, "<n>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Jobs, E, "--jobs");
     }},
    {"--cache-dir", Style::S_SepValue, FS_Core, "<dir>",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (!V || !*V) {
         E = "--cache-dir requires a directory";
         return false;
       }
       O.Config.CacheDir = V;
       return true;
     }},
    // FS_Prover ----------------------------------------------------------
    {"--prover-timeout", Style::S_SepValue, FS_Prover, "<ms>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Prover.TimeoutMs, E,
                        "--prover-timeout", /*AllowZero=*/false);
     }},
    {"--prover-retries", Style::S_SepValue, FS_Prover, "<n>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Prover.Retries, E, "--prover-retries");
     }},
    {"--prover-budget", Style::S_SepValue, FS_Prover, "<ms>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Prover.BudgetMs, E, "--prover-budget");
     }},
    {"--isolate-workers", Style::S_Bool, FS_Prover, "",
     [](CommonOptions &O, const char *, std::string &) {
       O.Config.Prover.Isolation = checker::WorkerIsolation::WI_Subprocess;
       return true;
     }},
    {"--worker-wall", Style::S_SepValue, FS_Prover, "<ms>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Prover.WorkerWallMs, E,
                        "--worker-wall", /*AllowZero=*/false);
     }},
    {"--worker-rss", Style::S_SepValue, FS_Prover, "<mb>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Prover.WorkerRssMb, E, "--worker-rss",
                        /*AllowZero=*/false);
     }},
    {"--worker-restarts", Style::S_SepValue, FS_Prover, "<n>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.Prover.WorkerRestarts, E,
                        "--worker-restarts");
     }},
    {"--degraded=", Style::S_EqValue, FS_Prover, "[quarantine|inprocess]",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (std::strcmp(V, "quarantine") == 0)
         O.Config.Prover.Degraded = checker::DegradedMode::DM_Quarantine;
       else if (std::strcmp(V, "inprocess") == 0)
         O.Config.Prover.Degraded = checker::DegradedMode::DM_InProcess;
       else {
         E = "--degraded= takes quarantine or inprocess";
         return false;
       }
       return true;
     }},
    // FS_Driver ----------------------------------------------------------
    {"--fail-fast", Style::S_Bool, FS_Driver, "",
     [](CommonOptions &O, const char *, std::string &) {
       O.FailFast = true;
       return true;
     }},
    {"--keep-going", Style::S_Bool, FS_Driver, "",
     [](CommonOptions &O, const char *, std::string &) {
       O.KeepGoing = true;
       return true;
     }},
    {"--report=json", Style::S_Bool, FS_Driver | FS_Client, "",
     [](CommonOptions &O, const char *, std::string &) {
       O.ReportJson = true;
       return true;
     }},
    {"--remarks=", Style::S_EqValue, FS_Driver, "[all|missed|none]",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (std::strcmp(V, "all") == 0)
         O.Remarks = CommonOptions::RemarkLevel::RL_All;
       else if (std::strcmp(V, "missed") == 0)
         O.Remarks = CommonOptions::RemarkLevel::RL_Missed;
       else if (std::strcmp(V, "none") == 0)
         O.Remarks = CommonOptions::RemarkLevel::RL_None;
       else {
         E = "--remarks= takes all, missed, or none";
         return false;
       }
       return true;
     }},
    // FS_Telemetry -------------------------------------------------------
    {"--trace-out=", Style::S_EqValue, FS_Telemetry, "FILE",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (!*V) {
         E = "--trace-out= requires a file";
         return false;
       }
       O.TraceOut = V;
       return true;
     }},
    {"--metrics-out=", Style::S_EqValue, FS_Telemetry, "FILE",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (!*V) {
         E = "--metrics-out= requires a file";
         return false;
       }
       O.MetricsOut = V;
       return true;
     }},
    {"--flight-recorder=", Style::S_EqValue, FS_Telemetry, "FILE",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (!*V) {
         E = "--flight-recorder= requires a file";
         return false;
       }
       O.FlightOut = V;
       return true;
     }},
    {"--flight-events=", Style::S_EqValue, FS_Telemetry, "<n>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.FlightEvents, E, "--flight-events=",
                        /*AllowZero=*/false);
     }},
    // FS_Service ---------------------------------------------------------
    {"--socket", Style::S_SepValue, FS_Service | FS_Client, "<path>",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (!V || !*V) {
         E = "--socket requires a path";
         return false;
       }
       O.SocketPath = V;
       return true;
     }},
    {"--max-inflight", Style::S_SepValue, FS_Service, "<obligations>",
     [](CommonOptions &O, const char *V, std::string &E) {
       return applyUInt(V, O.Config.MaxInFlightObligations, E,
                        "--max-inflight");
     }},
    {"--telemetry", Style::S_Bool, FS_Service, "",
     [](CommonOptions &O, const char *, std::string &) {
       O.Telemetry = true;
       return true;
     }},
    // FS_Client ----------------------------------------------------------
    {"--deadline", Style::S_SepValue, FS_Client, "<ms>",
     [](CommonOptions &O, const char *V, std::string &E) {
       unsigned long long Ms = 0;
       if (!parseU64(V, Ms)) {
         E = "--deadline requires a number of milliseconds";
         return false;
       }
       O.DeadlineMs = static_cast<int64_t>(Ms);
       return true;
     }},
    {"--only", Style::S_SepValue, FS_Client, "<name>",
     [](CommonOptions &O, const char *V, std::string &E) {
       if (!V || !*V) {
         E = "--only requires a definition name";
         return false;
       }
       O.Only.push_back(V);
       return true;
     }},
};

} // namespace

bool cli::parseFlags(int Argc, char **Argv, const char *Tool, unsigned Sets,
                     CommonOptions &Opts,
                     std::vector<const char *> &Positional) {
  // The CLI default is tighter than the library default: command-line
  // runs want fast feedback; embedders can afford the full 30 s.
  Opts.Config.Prover.TimeoutMs = 8000;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-' || Arg[1] != '-') {
      Positional.push_back(Arg);
      continue;
    }
    const FlagRow *Match = nullptr;
    const char *Value = nullptr;
    for (const FlagRow &Row : Rows) {
      if (Row.St == Style::S_EqValue) {
        size_t Len = std::strlen(Row.Name);
        if (std::strncmp(Arg, Row.Name, Len) == 0) {
          Match = &Row;
          Value = Arg + Len;
          break;
        }
      } else if (std::strcmp(Arg, Row.Name) == 0) {
        Match = &Row;
        break;
      }
    }
    if (!Match) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", Tool, Arg);
      return false;
    }
    if (!(Match->Set & Sets)) {
      std::fprintf(stderr, "%s: flag '%s' is not accepted by this tool\n",
                   Tool, Arg);
      return false;
    }
    if (Match->St == Style::S_SepValue) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", Tool,
                     Match->Name);
        return false;
      }
      Value = Argv[++I];
    }
    std::string Err;
    if (!Match->Apply(Opts, Value, Err)) {
      std::fprintf(stderr, "%s: %s\n", Tool, Err.c_str());
      return false;
    }
  }
  if (!Opts.TraceOut.empty() || !Opts.MetricsOut.empty() ||
      !Opts.FlightOut.empty()) {
    // Telemetry failures never change exit codes: a soundness tool's
    // verdict must not depend on whether its instrumentation worked.
    if (support::telemetryCompiledIn())
      Opts.Config.Telemetry = true;
    else
      std::fprintf(stderr,
                   "%s: warning: this build has telemetry compiled "
                   "out (-DCOBALT_TELEMETRY=OFF); --trace-out/"
                   "--metrics-out/--flight-recorder= will write empty "
                   "documents\n",
                   Tool);
  }
  if (Opts.Telemetry)
    Opts.Config.Telemetry = support::telemetryCompiledIn();
  return true;
}

std::string cli::flagUsage(unsigned Sets) {
  std::string Out;
  std::string Line = "flags:";
  for (const FlagRow &Row : Rows) {
    if (!(Row.Set & Sets))
      continue;
    std::string Item = Row.Name;
    if (Row.St == Style::S_EqValue)
      Item += Row.Help;
    else if (*Row.Help) {
      Item += ' ';
      Item += Row.Help;
    }
    if (Line.size() + Item.size() + 1 > 70) {
      Out += Line + "\n";
      Line = "      ";
    }
    Line += ' ';
    Line += Item;
  }
  if (Line.size() > 7)
    Out += Line + "\n";
  return Out;
}
