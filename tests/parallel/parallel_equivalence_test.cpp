//===- parallel_equivalence_test.cpp - `--jobs N` is bit-identical --------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel pipeline's core promise: whatever the thread-pool width,
/// checker reports, pass reports, rewritten programs, and injected-fault
/// decisions are byte-identical to the sequential run. Obligations are
/// deterministic Z3 queries collected in input order; per-procedure jobs
/// merge in procedure order; fault decisions key on stable job
/// fingerprints instead of arrival order. These tests pin all of that at
/// widths 1, 4, and 8.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "engine/PassManager.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::engine;
using support::ScopedFaultPlan;
using support::ThreadPool;
namespace faults = cobalt::support::faults;

namespace {

/// The widths under test. 1 is the inline-mode baseline.
const unsigned Widths[] = {1, 4, 8};

LabelRegistry makeRegistry() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  return Registry;
}

/// Serializes a whole suite of reports into one comparable blob. Uses
/// the cache serialization (name, verdict, degradation, per-obligation
/// status/kind/message/attempts/counterexample) — everything except the
/// wall-clock timings, which legitimately differ between runs.
std::string
suiteFingerprint(const std::vector<CheckReport> &Reports) {
  std::ostringstream Out;
  for (const CheckReport &R : Reports)
    Out << serializeCheckReport(R) << "\n---\n";
  return Out.str();
}

/// Runs the checker suite at the given width over a fixed definition set.
std::string runSuiteAt(unsigned Jobs) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());
  ThreadPool Pool(Jobs);
  SC.setThreadPool(&Pool);
  std::vector<Optimization> Opts = {opts::constProp(), opts::cse(),
                                    opts::deadAssignElim()};
  return suiteFingerprint(SC.checkSuite(opts::allAnalyses(), Opts));
}

const char *MultiProcProgram = R"(
  proc helper(a) {
    decl t;
    decl u;
    t := 3;
    u := t;
    u := u + a;
    return u;
  }
  proc other(b) {
    decl v;
    v := b;
    v := v * 1;
    return v;
  }
  proc main(x) {
    decl c;
    decl d;
    c := 2;
    d := c + 0;
    d := d * 1;
    d := d + x;
    return d;
  }
)";

struct PipelineOutcome {
  std::string Program;
  std::string Reports; ///< (pass, proc, applied, kind, flags) sequence.
  bool Degraded = false;
};

PipelineOutcome runPipelineAt(unsigned Jobs, const std::string &FaultPlan,
                              uint64_t Seed) {
  PassManager PM;
  for (PureAnalysis &A : opts::allAnalyses())
    PM.addAnalysis(std::move(A));
  for (Optimization &O : opts::allOptimizations())
    PM.addOptimization(std::move(O));
  ThreadPool Pool(Jobs);
  PM.setThreadPool(&Pool);

  ir::Program Prog = ir::parseProgramOrDie(MultiProcProgram);
  std::vector<PassReport> Reports;
  if (FaultPlan.empty()) {
    Reports = PM.run(Prog);
  } else {
    ScopedFaultPlan Plan(FaultPlan, Seed);
    Reports = PM.run(Prog);
  }

  PipelineOutcome Out;
  Out.Program = ir::toString(Prog);
  std::ostringstream R;
  for (const PassReport &Rep : Reports)
    R << Rep.PassName << "/" << Rep.ProcName << " applied="
      << Rep.AppliedCount << " kind=" << Rep.Err.kindName()
      << " msg=" << Rep.Err.Message << " rolled=" << Rep.RolledBack
      << " quar=" << Rep.Quarantined << "\n";
  Out.Reports = R.str();
  Out.Degraded = PM.lastRunDegraded();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Checker equivalence.
//===----------------------------------------------------------------------===//

TEST(ParallelEquivalenceTest, CheckerSuiteBitIdenticalAcrossWidths) {
  std::string Baseline = runSuiteAt(1);
  EXPECT_NE(Baseline.find("const_prop"), std::string::npos);
  for (unsigned Jobs : Widths)
    EXPECT_EQ(runSuiteAt(Jobs), Baseline) << "jobs=" << Jobs;
}

TEST(ParallelEquivalenceTest, CheckerFaultDecisionsKeyedNotArrivalOrdered) {
  // A probabilistic fault plan decides per (site, obligation
  // fingerprint, ordinal, seed); with 8 workers racing, the same
  // obligations must time out as in the sequential run — byte-identical
  // reports including attempt counts and error messages.
  auto RunStorm = [&](unsigned Jobs) {
    ScopedFaultPlan Plan(std::string(faults::CheckerForceTimeout) + "%30",
                         /*Seed=*/5);
    return runSuiteAt(Jobs);
  };
  std::string Baseline = RunStorm(1);
  EXPECT_NE(Baseline.find("prover_timeout"), std::string::npos)
      << "storm fired nothing:\n"
      << Baseline;
  for (unsigned Jobs : Widths)
    EXPECT_EQ(RunStorm(Jobs), Baseline) << "jobs=" << Jobs;
}

TEST(ParallelEquivalenceTest, SuiteReportsMatchPerDefinitionCalls) {
  // checkSuite fans all definitions' obligations out together; the
  // reassembled reports must equal one-definition-at-a-time checking.
  LabelRegistry Registry = makeRegistry();
  std::vector<Optimization> Opts = {opts::constProp(), opts::cse()};

  SoundnessChecker Individual(Registry, opts::allAnalyses());
  std::vector<CheckReport> One;
  for (const PureAnalysis &A : opts::allAnalyses())
    One.push_back(Individual.checkAnalysis(A));
  for (const Optimization &O : Opts)
    One.push_back(Individual.checkOptimization(O));

  SoundnessChecker Suite(Registry, opts::allAnalyses());
  ThreadPool Pool(4);
  Suite.setThreadPool(&Pool);
  std::vector<CheckReport> All = Suite.checkSuite(opts::allAnalyses(), Opts);

  EXPECT_EQ(suiteFingerprint(All), suiteFingerprint(One));
}

//===----------------------------------------------------------------------===//
// Pass-pipeline equivalence.
//===----------------------------------------------------------------------===//

TEST(ParallelEquivalenceTest, PipelineBitIdenticalAcrossWidths) {
  PipelineOutcome Baseline = runPipelineAt(1, "", 0);
  EXPECT_NE(Baseline.Reports.find("applied=1"), std::string::npos)
      << "pipeline rewrote nothing:\n"
      << Baseline.Reports;
  for (unsigned Jobs : Widths) {
    PipelineOutcome Out = runPipelineAt(Jobs, "", 0);
    EXPECT_EQ(Out.Program, Baseline.Program) << "jobs=" << Jobs;
    EXPECT_EQ(Out.Reports, Baseline.Reports) << "jobs=" << Jobs;
    EXPECT_EQ(Out.Degraded, Baseline.Degraded) << "jobs=" << Jobs;
  }
}

TEST(ParallelEquivalenceTest, PipelineFaultStormDeterministicAcrossWidths) {
  const std::string Storm = std::string(faults::EngineThrowMidRewrite) +
                            "%40," + faults::InterpForceStuck + "%10";
  PipelineOutcome Baseline = runPipelineAt(1, Storm, 3);
  EXPECT_TRUE(Baseline.Degraded) << "storm fired nothing";
  for (unsigned Jobs : Widths) {
    PipelineOutcome Out = runPipelineAt(Jobs, Storm, 3);
    EXPECT_EQ(Out.Program, Baseline.Program) << "jobs=" << Jobs;
    EXPECT_EQ(Out.Reports, Baseline.Reports) << "jobs=" << Jobs;
    EXPECT_EQ(Out.Degraded, Baseline.Degraded) << "jobs=" << Jobs;
  }
}

//===----------------------------------------------------------------------===//
// Rollback and quarantine under concurrent failure.
//===----------------------------------------------------------------------===//

TEST(ParallelEquivalenceTest, ConcurrentFailuresRollBackEveryProcedure) {
  // Every rewrite attempt explodes, in every procedure job at once. All
  // failures must be contained per procedure (rolled back, zero net
  // rewrites) and the program must come out byte-identical to the input.
  PassManager PM;
  for (Optimization &O : opts::allOptimizations())
    PM.addOptimization(std::move(O));
  ThreadPool Pool(4);
  PM.setThreadPool(&Pool);

  ir::Program Prog = ir::parseProgramOrDie(MultiProcProgram);
  std::string Before = ir::toString(Prog);
  std::vector<PassReport> Reports;
  {
    ScopedFaultPlan Plan(faults::EngineThrowMidRewrite);
    Reports = PM.run(Prog);
  }
  EXPECT_EQ(ir::toString(Prog), Before);
  EXPECT_TRUE(PM.lastRunDegraded());
  bool AnyFailed = false;
  for (const PassReport &R : Reports) {
    if (!R.failed())
      continue;
    AnyFailed = true;
    EXPECT_TRUE(R.RolledBack) << R.PassName << "/" << R.ProcName;
    EXPECT_EQ(R.AppliedCount, 0u) << R.PassName << "/" << R.ProcName;
  }
  EXPECT_TRUE(AnyFailed);
}

TEST(ParallelEquivalenceTest, QuarantineReadsRunStartStateAtEveryWidth) {
  // Quarantine decisions snapshot the run-start failure counters, so a
  // pass crossing the threshold mid-run is quarantined on the *next*
  // run — identically at every width. The failure streak is counted
  // per (procedure, pass) event and a success anywhere resets it, so
  // the program gives the pass a rewrite site in *every* procedure;
  // with every rewrite exploding, three failing runs comfortably trip
  // the default threshold and the next run must report quarantine
  // skips.
  const char *EverywhereSites = R"(
    proc helper(a) {
      decl t;
      t := a;
      t := t * 1;
      return t;
    }
    proc other(b) {
      decl v;
      v := b;
      v := v * 1;
      return v;
    }
    proc main(x) {
      decl d;
      d := x;
      d := d * 1;
      return d;
    }
  )";
  for (unsigned Jobs : Widths) {
    PassManager PM;
    for (Optimization &O : opts::allOptimizations())
      PM.addOptimization(std::move(O));
    ThreadPool Pool(Jobs);
    PM.setThreadPool(&Pool);

    ir::Program Prog = ir::parseProgramOrDie(EverywhereSites);
    std::vector<std::string> QuarantinedAfter;
    {
      ScopedFaultPlan Plan(faults::EngineThrowMidRewrite);
      for (int Run = 0; Run < 3; ++Run)
        PM.run(Prog);
      QuarantinedAfter = PM.quarantined();
    }
    ASSERT_FALSE(QuarantinedAfter.empty()) << "jobs=" << Jobs;

    // With the fault gone, the quarantined passes are still skipped...
    std::vector<PassReport> Reports = PM.run(Prog);
    bool SawSkip = false;
    for (const PassReport &R : Reports)
      if (R.Quarantined) {
        SawSkip = true;
        EXPECT_EQ(R.Err.Kind, support::ErrorKind::EK_Quarantined);
      }
    EXPECT_TRUE(SawSkip) << "jobs=" << Jobs;

    // ...until the quarantine is reset.
    PM.resetQuarantine();
    EXPECT_TRUE(PM.quarantined().empty());
    for (const PassReport &R : PM.run(Prog))
      EXPECT_FALSE(R.Quarantined) << R.PassName;
  }
}
