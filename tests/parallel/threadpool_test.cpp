//===- threadpool_test.cpp - The deterministic fan-out primitive ----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for support::ThreadPool, the one concurrency primitive the
/// parallel checker and pass manager are built on. The contract under
/// test: parallelFor covers every index exactly once, width 1 means *no*
/// worker threads (inline on the caller), and exceptions surface
/// deterministically (lowest failing index) regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

using cobalt::support::ThreadPool;

TEST(ThreadPoolTest, WidthOneIsInlineWithNoWorkers) {
  ThreadPool Pool(1);
  EXPECT_TRUE(Pool.inlineMode());
  EXPECT_EQ(Pool.jobs(), 1u);

  // Inline mode runs on the calling thread, in index order.
  std::vector<size_t> Order;
  std::thread::id Caller = std::this_thread::get_id();
  Pool.parallelFor(5, [&](size_t I) {
    EXPECT_EQ(std::this_thread::get_id(), Caller);
    Order.push_back(I);
  });
  EXPECT_EQ(Order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, WidthZeroMeansHardwareConcurrency) {
  ThreadPool Pool(0);
  EXPECT_GE(Pool.jobs(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_FALSE(Pool.inlineMode());
  constexpr size_t N = 257; // deliberately not a multiple of the width
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.parallelFor(N, [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool Pool(4);
  Pool.parallelFor(0, [&](size_t) { FAIL() << "body ran for N=0"; });
}

TEST(ThreadPoolTest, LowestFailingIndexIsRethrownDeterministically) {
  // Indices 3 and 7 both throw; whichever thread finishes first, the
  // caller must always observe index 3's exception. Repeat to give a
  // racy implementation a chance to misbehave.
  for (int Round = 0; Round < 20; ++Round) {
    ThreadPool Pool(4);
    try {
      Pool.parallelFor(16, [&](size_t I) {
        if (I == 3 || I == 7)
          throw std::runtime_error("boom at " + std::to_string(I));
      });
      FAIL() << "exception swallowed";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "boom at 3");
    }
  }
}

TEST(ThreadPoolTest, RemainingIndicesStillRunAfterAThrow) {
  // One failing index must not abandon the rest of the range: every
  // index is still visited exactly once (the parallel checker relies on
  // this — one faulted obligation may not silently skip its siblings).
  ThreadPool Pool(4);
  constexpr size_t N = 64;
  std::vector<std::atomic<unsigned>> Hits(N);
  try {
    Pool.parallelFor(N, [&](size_t I) {
      ++Hits[I];
      if (I == 5)
        throw std::runtime_error("one bad job");
    });
  } catch (const std::runtime_error &) {
  }
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool Pool(3);
  std::atomic<size_t> Total{0};
  for (int Round = 0; Round < 8; ++Round)
    Pool.parallelFor(10, [&](size_t) { ++Total; });
  EXPECT_EQ(Total.load(), 80u);
}
