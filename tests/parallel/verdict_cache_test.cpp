//===- verdict_cache_test.cpp - Fingerprint-keyed verdict caching ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict cache's invariants: serialized reports round-trip
/// losslessly, verdicts are keyed by a structural fingerprint of the
/// definition *and* its checking context (so a changed context is a
/// cache miss, never a stale hit), only definitive verdicts are cached,
/// and a persistent cache directory survives across checker instances —
/// while an unusable directory degrades to in-memory caching instead of
/// failing the check.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/PersistentCache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;
using support::ScopedFaultPlan;
namespace faults = cobalt::support::faults;
namespace fs = std::filesystem;

namespace {

LabelRegistry makeRegistry() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  return Registry;
}

/// A fresh, empty scratch directory under the test temp root.
fs::path scratchDir(const std::string &Name) {
  fs::path Dir = fs::path(::testing::TempDir()) / ("cobalt_" + Name);
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir;
}

size_t countVerdictFiles(const fs::path &Dir) {
  size_t N = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    std::string Name = E.path().filename().string();
    if (Name.rfind("verdict-", 0) == 0)
      ++N;
  }
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization.
//===----------------------------------------------------------------------===//

TEST(VerdictCacheTest, SerializationRoundTripsLosslessly) {
  CheckReport R;
  R.Name = "weird name\nwith\\newline";
  R.V = CheckReport::Verdict::V_Unsound;
  R.Sound = false;
  R.Degradation = support::ErrorKind::EK_ProverTimeout;
  R.AssumedAnalyses = {"notTainted", "other analysis"};

  ObligationResult Proven;
  Proven.Name = "F1";
  Proven.St = ObligationResult::Status::OS_Proven;
  Proven.Attempts = 1;
  Proven.RlimitSpent = 123456789;
  R.Obligations.push_back(Proven);

  ObligationResult Failed;
  Failed.Name = "B3/assign";
  Failed.St = ObligationResult::Status::OS_Failed;
  Failed.Attempts = 2;
  Failed.Counterexample = "x = 7\ny = -1";
  R.Obligations.push_back(Failed);

  ObligationResult Unknown;
  Unknown.Name = "B4/branch";
  Unknown.St = ObligationResult::Status::OS_Unknown;
  Unknown.Err = support::Error(support::ErrorKind::EK_ProverTimeout,
                               "timeout after 3 attempts");
  Unknown.Attempts = 3;
  R.Obligations.push_back(Unknown);

  std::string Blob = serializeCheckReport(R);
  std::optional<CheckReport> Back = deserializeCheckReport(Blob);
  ASSERT_TRUE(Back.has_value());

  // Re-serializing the deserialized report must reproduce the blob —
  // every field the cache carries survived, including the escaped
  // newlines and the per-obligation error payloads.
  EXPECT_EQ(serializeCheckReport(*Back), Blob);
  EXPECT_EQ(Back->Name, R.Name);
  EXPECT_EQ(Back->V, CheckReport::Verdict::V_Unsound);
  EXPECT_EQ(Back->Degradation, support::ErrorKind::EK_ProverTimeout);
  ASSERT_EQ(Back->Obligations.size(), 3u);
  EXPECT_EQ(Back->Obligations[1].Counterexample, "x = 7\ny = -1");
  EXPECT_EQ(Back->Obligations[2].Err.Kind,
            support::ErrorKind::EK_ProverTimeout);
  EXPECT_EQ(Back->Obligations[2].Err.Message, "timeout after 3 attempts");
  EXPECT_EQ(Back->Obligations[2].Attempts, 3u);
  EXPECT_EQ(Back->Obligations[0].RlimitSpent, 123456789u);
}

TEST(VerdictCacheTest, MalformedBlobsAreRejectedNotMisread) {
  EXPECT_FALSE(deserializeCheckReport("").has_value());
  EXPECT_FALSE(deserializeCheckReport("garbage").has_value());
  EXPECT_FALSE(deserializeCheckReport("report 3\nname x\nverdict sound\n")
                   .has_value()); // future version
  EXPECT_FALSE(deserializeCheckReport("report 1\nname x\nverdict sound\n")
                   .has_value()); // pre-rlimit version (orphaned)
  EXPECT_FALSE(
      deserializeCheckReport("report 2\nname x\nverdict maybe\n")
          .has_value()); // unknown verdict
  EXPECT_FALSE(
      deserializeCheckReport("report 2\nname x\nverdict sound\nstatus "
                             "proven\n")
          .has_value()); // obligation field outside any obligation
}

//===----------------------------------------------------------------------===//
// In-memory cache.
//===----------------------------------------------------------------------===//

TEST(VerdictCacheTest, RecheckIsServedFromMemoryByteIdentically) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());

  CheckReport Cold = SC.checkOptimization(opts::simplifyMulOne());
  ASSERT_TRUE(Cold.Sound) << Cold.str();
  EXPECT_FALSE(Cold.CacheHit);
  EXPECT_EQ(SC.cacheHits(), 0u);

  CheckReport Warm = SC.checkOptimization(opts::simplifyMulOne());
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(SC.cacheHits(), 1u);
  EXPECT_NE(Warm.str().find("(cached)"), std::string::npos) << Warm.str();
  // Identical verdict payload, no re-proving.
  EXPECT_EQ(serializeCheckReport(Warm), serializeCheckReport(Cold));
}

TEST(VerdictCacheTest, UnprovenVerdictsAreNeverCached) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());
  fs::path Dir = scratchDir("unproven_not_cached");
  ASSERT_TRUE(SC.setCacheDir(Dir.string()));

  {
    ScopedFaultPlan Plan(faults::CheckerForceTimeout);
    CheckReport Degraded = SC.checkOptimization(opts::simplifyMulOne());
    ASSERT_EQ(Degraded.V, CheckReport::Verdict::V_Unproven);
  }
  // Nothing was cached, in memory or on disk: the rerun (faults gone)
  // must prove it fresh rather than resurrect the degraded verdict.
  EXPECT_EQ(countVerdictFiles(Dir), 0u);
  CheckReport Retry = SC.checkOptimization(opts::simplifyMulOne());
  EXPECT_FALSE(Retry.CacheHit);
  EXPECT_TRUE(Retry.Sound) << Retry.str();
  EXPECT_EQ(SC.cacheHits(), 0u);
}

//===----------------------------------------------------------------------===//
// Persistent cache.
//===----------------------------------------------------------------------===//

TEST(VerdictCacheTest, DiskCacheSurvivesAcrossCheckerInstances) {
  fs::path Dir = scratchDir("disk_cache");
  LabelRegistry Registry = makeRegistry();

  std::string ColdBlob;
  {
    SoundnessChecker SC(Registry, opts::allAnalyses());
    ASSERT_TRUE(SC.setCacheDir(Dir.string()));
    CheckReport Cold = SC.checkOptimization(opts::simplifyMulOne());
    ASSERT_TRUE(Cold.Sound);
    ColdBlob = serializeCheckReport(Cold);
    EXPECT_GE(SC.diskCache().stores(), 1u);
  }
  EXPECT_GE(countVerdictFiles(Dir), 1u);

  // A brand-new checker (empty memory cache) with the same registry and
  // analysis context hits the on-disk verdict.
  SoundnessChecker Fresh(Registry, opts::allAnalyses());
  ASSERT_TRUE(Fresh.setCacheDir(Dir.string()));
  CheckReport Warm = Fresh.checkOptimization(opts::simplifyMulOne());
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_GE(Fresh.diskCache().hits(), 1u);
  EXPECT_EQ(serializeCheckReport(Warm), ColdBlob);
}

TEST(VerdictCacheTest, ChangedAnalysisContextMissesTheCache) {
  // The fingerprint folds in the whole checking context — registered
  // predicates and analysis witnesses — because obligations depend on
  // them. Same optimization + different context must be a miss, never a
  // stale hit.
  fs::path Dir = scratchDir("context_invalidation");
  LabelRegistry Registry = makeRegistry();

  {
    SoundnessChecker WithAnalyses(Registry, opts::allAnalyses());
    ASSERT_TRUE(WithAnalyses.setCacheDir(Dir.string()));
    ASSERT_TRUE(
        WithAnalyses.checkOptimization(opts::simplifyMulOne()).Sound);
  }
  ASSERT_GE(countVerdictFiles(Dir), 1u);

  SoundnessChecker NoAnalyses(Registry);
  ASSERT_TRUE(NoAnalyses.setCacheDir(Dir.string()));
  CheckReport R = NoAnalyses.checkOptimization(opts::simplifyMulOne());
  EXPECT_FALSE(R.CacheHit) << "stale hit across differing contexts";
  EXPECT_TRUE(R.Sound);
  // Both verdicts now coexist on disk under distinct fingerprints.
  EXPECT_GE(countVerdictFiles(Dir), 2u);
}

TEST(VerdictCacheTest, CorruptDiskEntryIsIgnoredNotTrusted) {
  fs::path Dir = scratchDir("corrupt_entry");
  LabelRegistry Registry = makeRegistry();
  {
    SoundnessChecker SC(Registry, opts::allAnalyses());
    ASSERT_TRUE(SC.setCacheDir(Dir.string()));
    ASSERT_TRUE(SC.checkOptimization(opts::simplifyMulOne()).Sound);
  }
  // Truncate every stored verdict to garbage.
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    std::ofstream Out(E.path(), std::ios::trunc);
    Out << "report 2\nname x\nverdict maybe\n";
  }

  SoundnessChecker Fresh(Registry, opts::allAnalyses());
  ASSERT_TRUE(Fresh.setCacheDir(Dir.string()));
  CheckReport R = Fresh.checkOptimization(opts::simplifyMulOne());
  EXPECT_FALSE(R.CacheHit);
  EXPECT_TRUE(R.Sound) << R.str();
}

TEST(VerdictCacheTest, UnusableCacheDirDegradesToMemoryOnly) {
  // Point the cache at a path occupied by a regular file: open fails,
  // the checker reports it (so cobaltc can warn), and checking proceeds
  // with the in-memory cache alone.
  fs::path Dir = scratchDir("unusable");
  fs::path NotADir = Dir / "occupied";
  { std::ofstream(NotADir) << "not a directory"; }

  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());
  EXPECT_FALSE(SC.setCacheDir(NotADir.string()));
  EXPECT_FALSE(SC.diskCache().enabled());

  CheckReport Cold = SC.checkOptimization(opts::simplifyMulOne());
  EXPECT_TRUE(Cold.Sound) << Cold.str();
  CheckReport Warm = SC.checkOptimization(opts::simplifyMulOne());
  EXPECT_TRUE(Warm.CacheHit); // memory cache still works
}
