//===- formula_test.cpp - ψ evaluation and satisfaction -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Formula.h"

#include "core/Builder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Fixture: the §5.2 example procedure plus a registry with a small
/// syntacticDef/mayDef label set.
class FormulaTest : public ::testing::Test {
protected:
  void SetUp() override {
    Prog = parseProgramOrDie(R"(
      proc main(x) {
        decl a;
        decl b;
        decl c;
        a := 2;
        b := 3;
        c := a;
        return c;
      }
    )");
    Proc = &Prog.Procs[0];
    Univ = buildUniverse(*Proc);

    // syntacticDef(Y): decl Y or an assignment to Y.
    Registry.define(makeLabelDef(
        "syntacticDef", {"Y"},
        CaseBuilder(tCurrStmt())
            .stmtArm("decl Y", fTrue())
            .stmtArm("Y := E", fTrue())
            .stmtArm("Y := new", fTrue())
            .elseArm(fFalse())));

    // mayDef(Y): conservative — pointer stores and calls may define
    // anything; otherwise a syntactic definition.
    Registry.define(makeLabelDef(
        "mayDef", {"Y"},
        CaseBuilder(tCurrStmt())
            .stmtArm("*X := Z", fTrue())
            .stmtArm("X := P(Z)", fTrue())
            .elseArm(labelF("syntacticDef", {tExpr("Y")}))));

    Registry.declareAnalysisLabel("notTainted");
    Labels.resize(Proc->size());
  }

  NodeContext ctx(int Index) {
    return {Proc, Index, &Registry, &Labels, &Univ};
  }

  Program Prog;
  const Procedure *Proc;
  Universe Univ;
  LabelRegistry Registry;
  Labeling Labels;
};

TEST_F(FormulaTest, UniverseContents) {
  // Vars: x, a, b, c. Consts: 2, 3. Indices: 0..6.
  EXPECT_EQ(Univ.Vars.size(), 4u);
  EXPECT_EQ(Univ.Consts.size(), 2u);
  EXPECT_EQ(Univ.Indices.size(), 7u);
  EXPECT_TRUE(Univ.Procs.empty());
}

TEST_F(FormulaTest, StmtLabelCheckMode) {
  // Node 3 is `a := 2`.
  Substitution Theta;
  Theta.bind("Y", Binding::var("a"));
  Theta.bind("C", Binding::constant(2));
  auto R = evalFormula(*stmtIs("Y := C"), ctx(3), Theta);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);

  Substitution Wrong;
  Wrong.bind("Y", Binding::var("b"));
  Wrong.bind("C", Binding::constant(2));
  R = evalFormula(*stmtIs("Y := C"), ctx(3), Wrong);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
}

TEST_F(FormulaTest, StmtLabelUnboundIsError) {
  Substitution Theta; // Y, C unbound
  EXPECT_FALSE(evalFormula(*stmtIs("Y := C"), ctx(3), Theta).has_value());
}

TEST_F(FormulaTest, StmtLabelGenerative) {
  auto Sats = satisfyFormula(*stmtIs("Y := C"), ctx(3), Substitution());
  ASSERT_EQ(Sats.size(), 1u);
  EXPECT_EQ(Sats[0].lookup("Y")->asVar(), "a");
  EXPECT_EQ(Sats[0].lookup("C")->asConst(), 2);

  // `c := a` (node 5) does not match Y := C.
  EXPECT_TRUE(satisfyFormula(*stmtIs("Y := C"), ctx(5), Substitution())
                  .empty());
}

TEST_F(FormulaTest, UserPredicateLabel) {
  Substitution Theta;
  Theta.bind("Y", Binding::var("a"));
  // Node 3 `a := 2` defines a.
  auto R = evalFormula(*labelF("mayDef", {tExpr("Y")}), ctx(3), Theta);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
  // Node 4 `b := 3` does not define a.
  R = evalFormula(*labelF("mayDef", {tExpr("Y")}), ctx(4), Theta);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
  // decl a (node 0) is a syntactic definition of a.
  R = evalFormula(*labelF("syntacticDef", {tExpr("Y")}), ctx(0), Theta);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
}

TEST_F(FormulaTest, NegatedLabelGenerativeEnumeratesUniverse) {
  // !mayDef(Y) at node 4 (`b := 3`): true for Y ∈ {x, a, c}.
  auto Sats = satisfyFormula(*fNot(labelF("mayDef", {tExpr("Y")})), ctx(4),
                             Substitution());
  EXPECT_EQ(Sats.size(), 3u);
  for (const Substitution &S : Sats)
    EXPECT_NE(S.lookup("Y")->asVar(), "b");
}

TEST_F(FormulaTest, AndComposesGeneratively) {
  // stmt(Y := C) && !mayDef(X): Y,C from the match; X enumerated.
  FormulaPtr F = fAnd(stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("X")})));
  auto Sats = satisfyFormula(*F, ctx(3), Substitution());
  // At node 3 (`a := 2`): Y=a, C=2; X ranges over {x, b, c}.
  EXPECT_EQ(Sats.size(), 3u);
}

TEST_F(FormulaTest, OrUnionsBranches) {
  FormulaPtr F = fOr(stmtIs("Y := C"), stmtIs("decl Y"));
  auto At3 = satisfyFormula(*F, ctx(3), Substitution());
  EXPECT_EQ(At3.size(), 1u);
  auto At0 = satisfyFormula(*F, ctx(0), Substitution());
  EXPECT_EQ(At0.size(), 1u);
  EXPECT_EQ(At0[0].lookup("Y")->asVar(), "a");
}

TEST_F(FormulaTest, EqOnTerms) {
  Substitution Theta;
  Theta.bind("X", Binding::var("a"));
  Theta.bind("Y", Binding::var("a"));
  auto R = evalFormula(*fEq(tExpr("X"), tExpr("Y")), ctx(0), Theta);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
  Theta = Substitution();
  Theta.bind("X", Binding::var("a"));
  Theta.bind("Y", Binding::var("b"));
  R = evalFormula(*fEq(tExpr("X"), tExpr("Y")), ctx(0), Theta);
  EXPECT_FALSE(*R);
}

TEST_F(FormulaTest, CaseFirstMatchWins) {
  // case currStmt of X := E => false | _ := E2 => true | else true.
  FormulaPtr F = CaseBuilder(tCurrStmt())
                     .stmtArm("X := E", fFalse())
                     .stmtArm("_ := E2", fTrue())
                     .elseArm(fTrue());
  // Node 3 `a := 2` matches the first arm -> false (not the second).
  auto R = evalFormula(*F, ctx(3), Substitution());
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
  // Node 0 `decl a` falls through to else -> true.
  R = evalFormula(*F, ctx(0), Substitution());
  EXPECT_TRUE(*R);
}

TEST_F(FormulaTest, CaseArmBindingsAreLocal) {
  // Arm pattern binds E locally; the formula has no free variables, so
  // generative satisfaction yields exactly the unchanged θ.
  FormulaPtr F = CaseBuilder(tCurrStmt())
                     .stmtArm("X := E", fTrue())
                     .elseArm(fFalse());
  std::vector<std::pair<std::string, MetaKind>> Frees;
  collectFreeMetas(*F, Frees);
  EXPECT_TRUE(Frees.empty());
  auto Sats = satisfyFormula(*F, ctx(3), Substitution());
  ASSERT_EQ(Sats.size(), 1u);
  EXPECT_TRUE(Sats[0].empty());
}

TEST_F(FormulaTest, ComputesFoldsConstants) {
  // computes(E, C) with E bound to 2 + 3 binds C to 5.
  Substitution Theta;
  Theta.bind("E", Binding::expr(parseExprPatternOrDie("2 + 3")));
  auto Sats = satisfyFormula(*labelF("computes", {tExpr("E"), tExpr("C")}),
                             ctx(0), Theta);
  ASSERT_EQ(Sats.size(), 1u);
  EXPECT_EQ(Sats[0].lookup("C")->asConst(), 5);

  // Check mode agrees.
  Substitution Full = Sats[0];
  auto R = evalFormula(*labelF("computes", {tExpr("E"), tExpr("C")}), ctx(0),
                       Full);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
}

TEST_F(FormulaTest, ComputesRejectsNonConstant) {
  Substitution Theta;
  Theta.bind("E", Binding::expr(parseExprPatternOrDie("a + 3")));
  EXPECT_TRUE(satisfyFormula(*labelF("computes", {tExpr("E"), tExpr("C")}),
                             ctx(0), Theta)
                  .empty());
  // Division by zero does not fold.
  Substitution T2;
  T2.bind("E", Binding::expr(parseExprPatternOrDie("1 / 0")));
  EXPECT_TRUE(satisfyFormula(*labelF("computes", {tExpr("E"), tExpr("C")}),
                             ctx(0), T2)
                  .empty());
}

TEST_F(FormulaTest, AnalysisLabelMembershipAndGenerativity) {
  GroundLabel G{"notTainted", {Binding::var("a")}};
  Labels[4].insert(G);

  Substitution Theta;
  Theta.bind("X", Binding::var("a"));
  auto R = evalFormula(*labelF("notTainted", {tExpr("X")}), ctx(4), Theta);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
  R = evalFormula(*labelF("notTainted", {tExpr("X")}), ctx(3), Theta);
  EXPECT_FALSE(*R);

  auto Sats = satisfyFormula(*labelF("notTainted", {tExpr("X")}), ctx(4),
                             Substitution());
  ASSERT_EQ(Sats.size(), 1u);
  EXPECT_EQ(Sats[0].lookup("X")->asVar(), "a");
}

TEST_F(FormulaTest, FreeMetasOfGuardFormulas) {
  FormulaPtr F = fAnd(stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("X")})));
  std::vector<std::pair<std::string, MetaKind>> Frees;
  collectFreeMetas(*F, Frees);
  ASSERT_EQ(Frees.size(), 3u);
  EXPECT_EQ(Frees[0].first, "Y");
  EXPECT_EQ(Frees[1].first, "C");
  EXPECT_EQ(Frees[1].second, MetaKind::MK_Const);
  EXPECT_EQ(Frees[2].first, "X");
}

} // namespace
