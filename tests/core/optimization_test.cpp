//===- optimization_test.cpp - Structural validation of optimizations -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Optimization.h"

#include "core/Builder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

Optimization makeConstProp() {
  Optimization O;
  O.Name = "const_prop";
  O.Pat.Dir = Direction::D_Forward;
  O.Pat.G.Psi1 = stmtIs("Y := C");
  O.Pat.G.Psi2 = fNot(labelF("mayDef", {tExpr("Y")}));
  O.Pat.From = parseStmtPatternOrDie("X := Y");
  O.Pat.To = parseStmtPatternOrDie("X := C");
  O.Pat.W = wEq(curEval("Y"), curEval("C"));
  return O;
}

TEST(OptimizationValidationTest, WellFormedConstProp) {
  EXPECT_EQ(validateOptimization(makeConstProp()), std::nullopt);
}

TEST(OptimizationValidationTest, Psi2VariableNotBoundByPsi1) {
  Optimization O = makeConstProp();
  O.Pat.G.Psi2 = fNot(labelF("mayDef", {tExpr("Z")}));
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("Z"), std::string::npos);
}

TEST(OptimizationValidationTest, RewriteResultVariableUnbound) {
  Optimization O = makeConstProp();
  O.Pat.To = parseStmtPatternOrDie("X := C9");
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("C9"), std::string::npos);
}

TEST(OptimizationValidationTest, RewriteResultWildcardRejected) {
  Optimization O = makeConstProp();
  O.Pat.To = parseStmtPatternOrDie("X := ...");
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("wildcard"), std::string::npos);
}

TEST(OptimizationValidationTest, WitnessDirectionMismatch) {
  Optimization O = makeConstProp();
  O.Pat.W = eqUpTo("X"); // backward witness in a forward pattern
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("direction"), std::string::npos);

  O.Pat.Dir = Direction::D_Backward;
  O.Pat.W = wEq(curEval("Y"), curEval("C"));
  EXPECT_TRUE(validateOptimization(O).has_value());
}

TEST(OptimizationValidationTest, WitnessVariableUnbound) {
  Optimization O = makeConstProp();
  O.Pat.W = wEq(curEval("Q"), curEval("C"));
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("Q"), std::string::npos);
}

TEST(OptimizationValidationTest, ReturnShapeMustBePreserved) {
  Optimization O = makeConstProp();
  O.Pat.From = parseStmtPatternOrDie("return X");
  O.Pat.To = parseStmtPatternOrDie("skip");
  O.Pat.G.Psi1 = stmtIs("Y := C"); // keep psi1 valid
  O.Pat.W = wEq(curEval("Y"), curEval("C"));
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("return"), std::string::npos);
}

TEST(OptimizationValidationTest, BranchFromNonBranchRejected) {
  Optimization O = makeConstProp();
  O.Pat.From = parseStmtPatternOrDie("skip");
  O.Pat.To = parseStmtPatternOrDie("if 1 goto 0 else 0");
  auto Err = validateOptimization(O);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("branch"), std::string::npos);
}

TEST(OptimizationValidationTest, BranchToBranchAllowed) {
  // Branch folding: if C goto I1 else I2 => if 1 goto I1 else I1.
  Optimization O;
  O.Name = "branch_fold";
  O.Pat.Dir = Direction::D_Forward;
  O.Pat.G.Psi1 = stmtIs("Y := C");
  O.Pat.G.Psi2 = fNot(labelF("mayDef", {tExpr("Y")}));
  O.Pat.From = parseStmtPatternOrDie("if Y goto I1 else I2");
  O.Pat.To = parseStmtPatternOrDie("if 1 goto I1 else I1");
  O.Pat.W = wEq(curEval("Y"), curEval("C"));
  EXPECT_EQ(validateOptimization(O), std::nullopt);
}

TEST(OptimizationValidationTest, MissingPieces) {
  Optimization O = makeConstProp();
  O.Pat.W = nullptr;
  EXPECT_TRUE(validateOptimization(O).has_value());

  O = makeConstProp();
  O.Pat.G.Psi1 = nullptr;
  EXPECT_TRUE(validateOptimization(O).has_value());

  O = makeConstProp();
  O.Choose = nullptr;
  EXPECT_TRUE(validateOptimization(O).has_value());
}

TEST(OptimizationValidationTest, ChooseAllIsIdentity) {
  std::vector<MatchSite> Delta;
  Substitution Theta;
  Theta.bind("X", Binding::var("a"));
  Delta.push_back({3, Theta});
  Procedure P;
  auto Out = chooseAll()(Delta, P);
  EXPECT_EQ(Out, Delta);
}

//===--------------------------------------------------------------------===//
// Pure analyses.
//===--------------------------------------------------------------------===//

PureAnalysis makeNotTainted() {
  PureAnalysis A;
  A.Name = "taint_analysis";
  A.G.Psi1 = stmtIs("decl X");
  A.G.Psi2 = fNot(stmtIs("_ := &X"));
  A.LabelName = "notTainted";
  A.LabelArgs = {tExpr("X")};
  A.W = notPointedToW("X");
  return A;
}

TEST(AnalysisValidationTest, WellFormedNotTainted) {
  EXPECT_EQ(validateAnalysis(makeNotTainted()), std::nullopt);
}

TEST(AnalysisValidationTest, LabelArgUnbound) {
  PureAnalysis A = makeNotTainted();
  A.LabelArgs = {tExpr("Q")};
  auto Err = validateAnalysis(A);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("Q"), std::string::npos);
}

TEST(AnalysisValidationTest, BuiltinLabelNameRejected) {
  PureAnalysis A = makeNotTainted();
  A.LabelName = "stmt";
  EXPECT_TRUE(validateAnalysis(A).has_value());
}

TEST(AnalysisValidationTest, BackwardWitnessRejected) {
  PureAnalysis A = makeNotTainted();
  A.W = eqUpTo("X");
  auto Err = validateAnalysis(A);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("forward"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Builders.
//===--------------------------------------------------------------------===//

TEST(BuilderTest, OptBuilderProducesValidOptimization) {
  Optimization O = OptBuilder("const_prop")
                       .forward()
                       .psi1(stmtIs("Y := C"))
                       .psi2(fNot(labelF("mayDef", {tExpr("Y")})))
                       .rewrite("X := Y", "X := C")
                       .witness(wEq(curEval("Y"), curEval("C")))
                       .build();
  EXPECT_EQ(O.Name, "const_prop");
  EXPECT_EQ(validateOptimization(O), std::nullopt);
  EXPECT_EQ(O.Pat.Dir, Direction::D_Forward);
}

TEST(BuilderTest, AnalysisBuilderProducesValidAnalysis) {
  PureAnalysis A = AnalysisBuilder("taint_analysis")
                       .psi1(stmtIs("decl X"))
                       .psi2(fNot(stmtIs("_ := &X")))
                       .defines("notTainted", {tExpr("X")})
                       .witness(notPointedToW("X"))
                       .build();
  EXPECT_EQ(validateAnalysis(A), std::nullopt);
}

TEST(BuilderTest, MatchSiteOrdering) {
  Substitution T1, T2;
  T1.bind("X", Binding::var("a"));
  T2.bind("X", Binding::var("b"));
  MatchSite A{1, T1}, B{1, T2}, C{2, T1};
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_EQ(A, A);
}

} // namespace
