//===- witness_test.cpp - Witness language and dynamic evaluation ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Witness.h"

#include "core/Builder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Builds a small state: variables a=2, b=3, p=&a.
ExecState makeState() {
  ExecState St;
  St.Env = {{"a", 1}, {"b", 2}, {"p", 3}};
  St.Store = {{1, Value::intV(2)}, {2, Value::intV(3)}, {3, Value::locV(1)}};
  St.NextLoc = 4;
  return St;
}

TEST(WitnessTest, DirectionClassification) {
  EXPECT_TRUE(isForwardWitness(*wEq(curEval("Y"), curEval("C"))));
  EXPECT_FALSE(isBackwardWitness(*wEq(curEval("Y"), curEval("C"))));
  EXPECT_TRUE(isBackwardWitness(*eqUpTo("X")));
  EXPECT_FALSE(isForwardWitness(*eqUpTo("X")));
  EXPECT_TRUE(isForwardWitness(*notPointedToW("X")));
  EXPECT_TRUE(isForwardWitness(*wTrue()));
  EXPECT_TRUE(isBackwardWitness(*wTrue()));
  EXPECT_TRUE(
      isBackwardWitness(*wEq(oldEval("X"), newEval("X"))));
  EXPECT_FALSE(
      isForwardWitness(*wAnd(wTrue(), wEq(oldEval("X"), newEval("X")))));
}

TEST(WitnessTest, EvalEquality) {
  ExecState St = makeState();
  Substitution Theta;
  Theta.bind("Y", Binding::var("a"));
  Theta.bind("C", Binding::constant(2));

  auto R = evalWitness(*wEq(curEval("Y"), curEval("C")), Theta, &St, nullptr,
                       nullptr);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);

  Theta = Substitution();
  Theta.bind("Y", Binding::var("b"));
  Theta.bind("C", Binding::constant(2));
  R = evalWitness(*wEq(curEval("Y"), curEval("C")), Theta, &St, nullptr,
                  nullptr);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
}

TEST(WitnessTest, EvalThroughDeref) {
  ExecState St = makeState();
  Substitution Theta;
  Theta.bind("P", Binding::var("p"));
  Theta.bind("X", Binding::var("a"));
  // η(*P) = η(X): *p and a are the same cell.
  auto R = evalWitness(*wEq(curEval("*P"), curEval("X")), Theta, &St,
                       nullptr, nullptr);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
}

TEST(WitnessTest, StuckTermIsUnknown) {
  ExecState St = makeState();
  Substitution Theta;
  Theta.bind("Y", Binding::var("nosuch"));
  Theta.bind("C", Binding::constant(0));
  EXPECT_FALSE(evalWitness(*wEq(curEval("Y"), curEval("C")), Theta, &St,
                           nullptr, nullptr)
                   .has_value());
  // Deref of a non-pointer is stuck too.
  Substitution T2;
  T2.bind("P", Binding::var("a"));
  T2.bind("X", Binding::var("b"));
  EXPECT_FALSE(evalWitness(*wEq(curEval("*P"), curEval("X")), T2, &St,
                           nullptr, nullptr)
                   .has_value());
}

TEST(WitnessTest, EqUpToHoldsWhenOnlyXDiffers) {
  ExecState Old = makeState();
  ExecState New = makeState();
  New.Store[1] = Value::intV(99); // only a's cell differs

  Substitution Theta;
  Theta.bind("X", Binding::var("a"));
  auto R = evalWitness(*eqUpTo("X"), Theta, nullptr, &Old, &New);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);

  // Differing in b's cell as well breaks it.
  New.Store[2] = Value::intV(100);
  R = evalWitness(*eqUpTo("X"), Theta, nullptr, &Old, &New);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
}

TEST(WitnessTest, EqUpToRequiresSameEnvAndAllocator) {
  ExecState Old = makeState();
  ExecState New = makeState();
  New.NextLoc = 9;
  Substitution Theta;
  Theta.bind("X", Binding::var("a"));
  auto R = evalWitness(*eqUpTo("X"), Theta, nullptr, &Old, &New);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(*R);
}

TEST(WitnessTest, EqUpToIdenticalStates) {
  ExecState Old = makeState();
  ExecState New = makeState();
  Substitution Theta;
  Theta.bind("X", Binding::var("b"));
  auto R = evalWitness(*eqUpTo("X"), Theta, nullptr, &Old, &New);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(*R);
}

TEST(WitnessTest, NotPointedTo) {
  ExecState St = makeState(); // p points to a
  Substitution ThetaA, ThetaB;
  ThetaA.bind("X", Binding::var("a"));
  ThetaB.bind("X", Binding::var("b"));

  auto RA = evalWitness(*notPointedToW("X"), ThetaA, &St, nullptr, nullptr);
  ASSERT_TRUE(RA.has_value());
  EXPECT_FALSE(*RA); // a IS pointed to

  auto RB = evalWitness(*notPointedToW("X"), ThetaB, &St, nullptr, nullptr);
  ASSERT_TRUE(RB.has_value());
  EXPECT_TRUE(*RB);
}

TEST(WitnessTest, BooleanConnectives) {
  ExecState St = makeState();
  Substitution Theta;
  Theta.bind("Y", Binding::var("a"));
  Theta.bind("C", Binding::constant(2));
  WitnessPtr Holds = wEq(curEval("Y"), curEval("C"));

  auto R = evalWitness(*wAnd(Holds, wTrue()), Theta, &St, nullptr, nullptr);
  EXPECT_TRUE(*R);
  R = evalWitness(*wNot(Holds), Theta, &St, nullptr, nullptr);
  EXPECT_FALSE(*R);
  R = evalWitness(*wOr(wNot(Holds), Holds), Theta, &St, nullptr, nullptr);
  EXPECT_TRUE(*R);
}

TEST(WitnessTest, UnboundPatternVariableIsUnknown) {
  ExecState St = makeState();
  Substitution Empty;
  EXPECT_FALSE(evalWitness(*wEq(curEval("Y"), curEval("C")), Empty, &St,
                           nullptr, nullptr)
                   .has_value());
  EXPECT_FALSE(
      evalWitness(*notPointedToW("X"), Empty, &St, nullptr, nullptr)
          .has_value());
}

TEST(WitnessTest, Printing) {
  EXPECT_EQ(wEq(curEval("Y"), curEval("C"))->str(), "eta(?Y) = eta(?C)");
  EXPECT_EQ(eqUpTo("X")->str(), "eta_old/?X = eta_new/?X");
}

} // namespace
