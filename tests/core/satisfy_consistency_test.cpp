//===- satisfy_consistency_test.cpp - satisfy ⊣⊢ eval ---------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property tests tying the two formula-evaluation modes together: every
/// substitution produced by generative satisfaction must satisfy the
/// complete check, and — over the finite fragment universe — generative
/// satisfaction must find *every* satisfying assignment of the formula's
/// free variables. This is the semantic backbone of the engine: GEN sets
/// are satisfyFormula results and ψ2 filtering is evalFormula.
///
//===----------------------------------------------------------------------===//

#include "core/Builder.h"
#include "core/Formula.h"
#include "ir/Generator.h"
#include "ir/Printer.h"
#include "opts/Labels.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Enumerates all assignments of \p Frees over the universe, calling
/// \p Sink for each complete substitution.
void forEachAssignment(
    const std::vector<std::pair<std::string, MetaKind>> &Frees, size_t At,
    const Universe &Univ, Substitution Theta,
    const std::function<void(const Substitution &)> &Sink) {
  if (At == Frees.size()) {
    Sink(Theta);
    return;
  }
  const auto &[Name, Kind] = Frees[At];
  auto Recurse = [&](Binding B) {
    Substitution Next = Theta;
    Next.bind(Name, std::move(B));
    forEachAssignment(Frees, At + 1, Univ, std::move(Next), Sink);
  };
  switch (Kind) {
  case MetaKind::MK_Var:
    for (const std::string &V : Univ.Vars)
      Recurse(Binding::var(V));
    break;
  case MetaKind::MK_Const:
    for (int64_t C : Univ.Consts)
      Recurse(Binding::constant(C));
    break;
  case MetaKind::MK_Expr:
    for (const Expr &E : Univ.Exprs)
      Recurse(Binding::expr(E));
    break;
  case MetaKind::MK_Proc:
    for (const std::string &P : Univ.Procs)
      Recurse(Binding::proc(P));
    break;
  case MetaKind::MK_Index:
    for (int I : Univ.Indices)
      Recurse(Binding::index(I));
    break;
  }
}

class SatisfyConsistency : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  /// satisfy(F) at every node == the eval-filtered full enumeration.
  void check(const FormulaPtr &F, const Procedure &P) {
    Universe Univ = buildUniverse(P);
    std::vector<std::pair<std::string, MetaKind>> Frees;
    collectFreeMetas(*F, Frees);

    for (int I = 0; I < P.size(); ++I) {
      NodeContext Ctx{&P, I, &Registry, nullptr, &Univ};
      auto Produced = satisfyFormula(*F, Ctx, {});
      std::set<Substitution> ProducedSet(Produced.begin(), Produced.end());

      std::set<Substitution> Expected;
      forEachAssignment(Frees, 0, Univ, {},
                        [&](const Substitution &Theta) {
                          auto R = evalFormula(*F, Ctx, Theta);
                          if (R && *R)
                            Expected.insert(Theta);
                        });

      // Soundness: everything produced evaluates true.
      for (const Substitution &Theta : ProducedSet) {
        auto R = evalFormula(*F, Ctx, Theta);
        ASSERT_TRUE(R.has_value())
            << F->str() << " at " << I << " " << Theta.str();
        EXPECT_TRUE(*R) << F->str() << " at " << I << " " << Theta.str();
      }
      // Completeness over full-domain assignments. (satisfy may return
      // *partial* substitutions for formulas that don't constrain every
      // variable — e.g. bare stmt() matches — so compare after filtering
      // Expected down to extensions of some produced substitution.)
      for (const Substitution &Theta : Expected) {
        bool Covered = false;
        for (const Substitution &Prod : ProducedSet) {
          Substitution Merged = Theta;
          bool Compatible = Merged.merge(Prod);
          if (Compatible && Merged == Theta) {
            Covered = true;
            break;
          }
        }
        EXPECT_TRUE(Covered) << F->str() << " at node " << I
                             << ": satisfy missed " << Theta.str() << "\n"
                             << toString(P);
      }
    }
  }

  LabelRegistry Registry;
};

TEST_P(SatisfyConsistency, ConstPropGuardPieces) {
  GenOptions Options{.NumVars = 3, .NumStmts = 8, .WithLoops = false};
  Program Prog = generateProgram(Options, GetParam());
  const Procedure &P = *Prog.findProc("main");
  check(stmtIs("Y := C"), P);
  check(fNot(labelF("mayDef", {tExpr("Y")})), P);
  check(fAnd(stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))), P);
}

TEST_P(SatisfyConsistency, DisjunctionAndEquality) {
  GenOptions Options{.NumVars = 3, .NumStmts = 8, .WithLoops = false};
  Program Prog = generateProgram(Options, GetParam());
  const Procedure &P = *Prog.findProc("main");
  check(fOr(stmtIs("X := ..."), stmtIs("return ...")), P);
  check(fAnd(stmtIs("X := E"),
             fNot(labelF("exprUses", {tExpr("E"), tExpr("X")}))),
        P);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatisfyConsistency,
                         ::testing::Range<uint64_t>(0, 8));

} // namespace
