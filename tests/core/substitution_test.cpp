//===- substitution_test.cpp ----------------------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Substitution.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

TEST(SubstitutionTest, BindAndLookup) {
  Substitution Theta;
  EXPECT_TRUE(Theta.empty());
  EXPECT_TRUE(Theta.bind("Y", Binding::var("a")));
  EXPECT_TRUE(Theta.bind("C", Binding::constant(2)));
  ASSERT_NE(Theta.lookup("Y"), nullptr);
  EXPECT_EQ(Theta.lookup("Y")->asVar(), "a");
  EXPECT_EQ(Theta.lookup("C")->asConst(), 2);
  EXPECT_EQ(Theta.lookup("Z"), nullptr);
  EXPECT_EQ(Theta.size(), 2u);
}

TEST(SubstitutionTest, RebindSameValueSucceeds) {
  Substitution Theta;
  EXPECT_TRUE(Theta.bind("X", Binding::var("a")));
  EXPECT_TRUE(Theta.bind("X", Binding::var("a")));
  EXPECT_EQ(Theta.size(), 1u);
}

TEST(SubstitutionTest, ConflictingRebindFails) {
  Substitution Theta;
  EXPECT_TRUE(Theta.bind("X", Binding::var("a")));
  EXPECT_FALSE(Theta.bind("X", Binding::var("b")));
  EXPECT_EQ(Theta.lookup("X")->asVar(), "a");
  // Different kinds conflict too.
  EXPECT_FALSE(Theta.bind("X", Binding::constant(1)));
}

TEST(SubstitutionTest, MergeDisjointAndConflicting) {
  Substitution A, B;
  A.bind("X", Binding::var("a"));
  B.bind("Y", Binding::constant(1));
  EXPECT_TRUE(A.merge(B));
  EXPECT_EQ(A.size(), 2u);

  Substitution C;
  C.bind("X", Binding::var("zzz"));
  EXPECT_FALSE(A.merge(C));
}

TEST(SubstitutionTest, OrderingIsTotalAndDeterministic) {
  Substitution A, B;
  A.bind("X", Binding::var("a"));
  B.bind("X", Binding::var("b"));
  std::set<Substitution> S{A, B, A};
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(A < B || B < A);
}

TEST(SubstitutionTest, ExprBindingsCompareStructurally) {
  Expr E1 = parseExprPatternOrDie("a + b");
  Expr E2 = parseExprPatternOrDie("a + b");
  Expr E3 = parseExprPatternOrDie("a + c");
  EXPECT_EQ(Binding::expr(E1), Binding::expr(E2));
  EXPECT_NE(Binding::expr(E1), Binding::expr(E3));
}

TEST(SubstitutionTest, StrRendersPaperNotation) {
  Substitution Theta;
  Theta.bind("Y", Binding::var("a"));
  Theta.bind("C", Binding::constant(2));
  EXPECT_EQ(Theta.str(), "[C -> 2, Y -> a]");
}

TEST(SubstitutionTest, BindingKindsAreDistinct) {
  EXPECT_NE(Binding::var("x"), Binding::proc("x"));
  EXPECT_NE(Binding::constant(0), Binding::index(0));
}

} // namespace
