//===- match_test.cpp - Matching and instantiation ------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Match.h"

#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

Stmt stmtOf(const char *Text) {
  // Ground statements parse through pattern mode with lower-case names.
  return parseStmtPatternOrDie(Text);
}

TEST(MatchTest, AssignBindsBothSides) {
  Substitution Theta;
  ASSERT_TRUE(matchStmt(parseStmtPatternOrDie("Y := C"), stmtOf("a := 2"),
                        Theta));
  EXPECT_EQ(Theta.lookup("Y")->asVar(), "a");
  EXPECT_EQ(Theta.lookup("C")->asConst(), 2);
}

TEST(MatchTest, KindsMustAgree) {
  Substitution Theta;
  // A Consts pattern does not match a variable RHS.
  EXPECT_FALSE(matchStmt(parseStmtPatternOrDie("Y := C"), stmtOf("a := b"),
                         Theta));
  // A Vars pattern does not match a constant RHS.
  EXPECT_FALSE(matchStmt(parseStmtPatternOrDie("X := Y"), stmtOf("a := 2"),
                         Theta));
  EXPECT_TRUE(Theta.empty());
}

TEST(MatchTest, MetaExprMatchesAnyRhs) {
  Substitution T1, T2, T3;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := E"), stmtOf("a := b + c"),
                        T1));
  EXPECT_EQ(T1.lookup("E")->asExpr(), parseExprPatternOrDie("b + c"));
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := E"), stmtOf("a := 5"),
                        T2));
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := E"), stmtOf("a := *p"),
                        T3));
}

TEST(MatchTest, NonlinearPatternsRequireEqualFragments) {
  Substitution Theta;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := X + X"),
                        stmtOf("a := a + a"), Theta));
  Substitution Theta2;
  EXPECT_FALSE(matchStmt(parseStmtPatternOrDie("X := X + X"),
                         stmtOf("a := a + b"), Theta2));
}

TEST(MatchTest, PreboundVariablesActAsConstants) {
  Substitution Theta;
  Theta.bind("Y", Binding::var("a"));
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := Y"), stmtOf("t := a"),
                        Theta));
  Substitution Theta2;
  Theta2.bind("Y", Binding::var("zz"));
  EXPECT_FALSE(matchStmt(parseStmtPatternOrDie("X := Y"), stmtOf("t := a"),
                         Theta2));
}

TEST(MatchTest, FailedMatchLeavesThetaUntouched) {
  Substitution Theta;
  Theta.bind("K", Binding::constant(9));
  Substitution Before = Theta;
  EXPECT_FALSE(matchStmt(parseStmtPatternOrDie("X := Y + Y"),
                         stmtOf("a := b + c"), Theta));
  EXPECT_EQ(Theta, Before);
}

TEST(MatchTest, WildcardLhsMatchesDerefStores) {
  // ¬stmt(_ := &X) must also reject `*p := &x` — storing x's address
  // through a pointer taints x just as a direct assignment does.
  Substitution T1;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("_ := &X"),
                        stmtOf("*p := &v"), T1));
  EXPECT_EQ(T1.lookup("X")->asVar(), "v");
  // A *named* lhs pattern still requires the variable alternative.
  Substitution T2;
  EXPECT_FALSE(matchStmt(parseStmtPatternOrDie("Y := &X"),
                         stmtOf("*p := &v"), T2));
}

TEST(MatchTest, WildcardsMatchWithoutBinding) {
  Substitution Theta;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("_ := E"), stmtOf("a := 1"),
                        Theta));
  EXPECT_EQ(Theta.size(), 1u); // only E
  Substitution T2;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := ..."), stmtOf("a := *p"),
                        T2));
  EXPECT_EQ(T2.size(), 1u); // only X
}

TEST(MatchTest, ReturnAndDeclPatterns) {
  Substitution T1;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("return ..."),
                        stmtOf("return v"), T1));
  Substitution T2;
  EXPECT_TRUE(
      matchStmt(parseStmtPatternOrDie("decl X"), stmtOf("decl y"), T2));
  EXPECT_EQ(T2.lookup("X")->asVar(), "y");
  Substitution T3;
  EXPECT_FALSE(
      matchStmt(parseStmtPatternOrDie("decl X"), stmtOf("skip"), T3));
}

TEST(MatchTest, PointerAndCallPatterns) {
  Substitution T1;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("*X := Z"),
                        stmtOf("*p := q"), T1));
  EXPECT_EQ(T1.lookup("X")->asVar(), "p");

  Substitution T2;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := P(Z)"),
                        stmtOf("r := f(v)"), T2));
  EXPECT_EQ(T2.lookup("P")->asProc(), "f");

  Substitution T3;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("X := &Y"),
                        stmtOf("p := &v"), T3));
  EXPECT_EQ(T3.lookup("Y")->asVar(), "v");
}

TEST(MatchTest, OperatorWildcardMatchesAnyOperator) {
  Substitution T1;
  EXPECT_TRUE(matchExpr(parseExprPatternOrDie("Y1 _ Y2"),
                        parseExprPatternOrDie("a + b"), T1));
  Substitution T2;
  EXPECT_TRUE(matchExpr(parseExprPatternOrDie("Y1 _ Y2"),
                        parseExprPatternOrDie("a < b"), T2));
  Substitution T3;
  EXPECT_FALSE(matchExpr(parseExprPatternOrDie("Y1 _ Y2"),
                         parseExprPatternOrDie("a"), T3));
}

TEST(MatchTest, BranchPatternsBindIndices) {
  Substitution Theta;
  EXPECT_TRUE(matchStmt(parseStmtPatternOrDie("if C goto I1 else I2"),
                        stmtOf("if 1 goto 3 else 7"), Theta));
  EXPECT_EQ(Theta.lookup("C")->asConst(), 1);
  EXPECT_EQ(Theta.lookup("I1")->asIndex(), 3);
  EXPECT_EQ(Theta.lookup("I2")->asIndex(), 7);
}

//===--------------------------------------------------------------------===//
// Instantiation.
//===--------------------------------------------------------------------===//

TEST(ApplySubstTest, RoundTripThroughMatch) {
  Stmt Pattern = parseStmtPatternOrDie("X := Y + C");
  Stmt Concrete = stmtOf("t := a + 3");
  Substitution Theta;
  ASSERT_TRUE(matchStmt(Pattern, Concrete, Theta));
  auto Out = applySubst(Pattern, Theta);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, Concrete);
}

TEST(ApplySubstTest, UnboundVariableFails) {
  Substitution Theta;
  Theta.bind("X", Binding::var("t"));
  EXPECT_FALSE(applySubst(parseStmtPatternOrDie("X := Y"), Theta));
}

TEST(ApplySubstTest, WrongKindFails) {
  Substitution Theta;
  Theta.bind("X", Binding::constant(1)); // X used in var position
  EXPECT_FALSE(applySubst(parseStmtPatternOrDie("decl X"), Theta));
}

TEST(ApplySubstTest, WildcardsCannotBeInstantiated) {
  Substitution Theta;
  EXPECT_FALSE(applySubst(parseStmtPatternOrDie("_ := 1"), Theta));
  EXPECT_FALSE(applySubstExpr(parseExprPatternOrDie("Y1 _ Y2"), Theta));
}

TEST(ApplySubstTest, MetaExprSubstitutesWholeExpression) {
  Substitution Theta;
  Theta.bind("X", Binding::var("t"));
  Theta.bind("E", Binding::expr(parseExprPatternOrDie("a + b")));
  auto Out = applySubst(parseStmtPatternOrDie("X := E"), Theta);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, stmtOf("t := a + b"));
}

TEST(ApplySubstTest, VarsBindingInBasePositionMayBeConst) {
  // After constant folding C may appear where a base expression is
  // expected; a Vars meta bound to a constant instantiates to that
  // constant.
  Substitution Theta;
  Theta.bind("X", Binding::var("t"));
  Theta.bind("B", Binding::constant(4));
  auto Out = applySubst(parseStmtPatternOrDie("X := B"), Theta);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, stmtOf("t := 4"));
}

TEST(ApplySubstTest, SkipIsAlwaysInstantiable) {
  Substitution Theta;
  auto Out = applySubst(parseStmtPatternOrDie("skip"), Theta);
  ASSERT_TRUE(Out.has_value());
  EXPECT_TRUE(Out->is<SkipStmt>());
}

} // namespace
