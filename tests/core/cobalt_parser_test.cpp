//===- cobalt_parser_test.cpp - The textual Cobalt front-end --------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/CobaltParser.h"

#include "core/Builder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

TEST(CobaltParserTest, ConstPropFromText) {
  CobaltModule M = parseCobaltOrDie(R"(
    label syntacticDef(X) :=
      case currStmt of
        decl X => true
      | X := E9 => true
      | X := new => true
      else => false
      endcase;

    label mayDef(X) :=
      case currStmt of
        *Y9 := E9 => true
      | Y9 := P9(_) => true
      else => syntacticDef(X)
      endcase;

    optimization const_prop :=
      forward
      stmt(Y := C)
      followed by !mayDef(Y)
      until X := Y => X := C
      with witness eta(Y) = eta(C);
  )");
  ASSERT_EQ(M.Optimizations.size(), 1u);
  ASSERT_EQ(M.Labels.size(), 2u);
  const Optimization &O = M.Optimizations[0];
  EXPECT_EQ(O.Name, "const_prop");
  EXPECT_EQ(O.Pat.Dir, Direction::D_Forward);
  EXPECT_EQ(O.Pat.From, parseStmtPatternOrDie("X := Y"));
  EXPECT_EQ(O.Pat.To, parseStmtPatternOrDie("X := C"));
  EXPECT_EQ(validateOptimization(O), std::nullopt);
  // The guard structure matches the builder version.
  EXPECT_EQ(O.Pat.G.Psi1->str(), stmtIs("Y := C")->str());
  EXPECT_EQ(O.Pat.G.Psi2->str(),
            fNot(labelF("mayDef", {tExpr("Y")}))->str());
  EXPECT_EQ(O.Pat.W->str(), wEq(curEval("Y"), curEval("C"))->str());
}

TEST(CobaltParserTest, BackwardDaeFromText) {
  CobaltModule M = parseCobaltOrDie(R"(
    label mayUse(X) := case currStmt of Y9 := X => true
                       else => true endcase;

    optimization dae :=
      backward
      (stmt(X := ...) || stmt(X := new) || stmt(return ...)) && !mayUse(X)
      preceded by !mayUse(X) && !stmt(decl X)
      since X := E => skip
      with witness eta_old/X = eta_new/X;
  )");
  ASSERT_EQ(M.Optimizations.size(), 1u);
  const Optimization &O = M.Optimizations[0];
  EXPECT_EQ(O.Pat.Dir, Direction::D_Backward);
  EXPECT_TRUE(O.Pat.To.is<SkipStmt>());
  EXPECT_EQ(O.Pat.W->str(), eqUpTo("X")->str());
}

TEST(CobaltParserTest, AnalysisFromText) {
  CobaltModule M = parseCobaltOrDie(R"(
    analysis taint_analysis :=
      stmt(decl X)
      followed by !stmt(_ := &X)
      defines notTainted(X)
      with witness notPointedTo(X);
  )");
  ASSERT_EQ(M.Analyses.size(), 1u);
  const PureAnalysis &A = M.Analyses[0];
  EXPECT_EQ(A.LabelName, "notTainted");
  ASSERT_EQ(A.LabelArgs.size(), 1u);
  EXPECT_EQ(validateAnalysis(A), std::nullopt);
}

TEST(CobaltParserTest, StateEqualityWitness) {
  CobaltModule M = parseCobaltOrDie(R"(
    optimization self_assign :=
      backward
      true
      preceded by false
      since X := X => skip
      with witness eta_old = eta_new;
  )");
  EXPECT_EQ(M.Optimizations[0].Pat.W->str(), wStateEq()->str());
}

TEST(CobaltParserTest, TermEqualityInFormulas) {
  CobaltModule M = parseCobaltOrDie(R"(
    optimization load_cse :=
      forward
      stmt(X := *P) && !(X = P)
      followed by !mayDefAny(X)
      until Y := *P => Y := X
      with witness eta(X) = eta(*P);
  )");
  const Optimization &O = M.Optimizations[0];
  std::string Psi1 = O.Pat.G.Psi1->str();
  EXPECT_NE(Psi1.find("?X = ?P"), std::string::npos) << Psi1;
}

TEST(CobaltParserTest, ErrorsAreReportedWithLocations) {
  DiagnosticEngine Diags;
  auto M = parseCobalt("optimization broken := forwards stmt(Y := C)",
                       Diags);
  EXPECT_FALSE(M.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(CobaltParserTest, ValidationErrorsSurface) {
  DiagnosticEngine Diags;
  // ψ2 uses a variable ψ1 does not bind.
  auto M = parseCobalt(R"(
    optimization broken :=
      forward
      stmt(Y := C)
      followed by !stmt(Q := ...)
      until X := Y => X := C
      with witness eta(Y) = eta(C);
  )",
                       Diags);
  EXPECT_FALSE(M.has_value());
  EXPECT_NE(Diags.str().find("Q"), std::string::npos);
}

TEST(CobaltParserTest, MultipleDefinitionsShareLabels) {
  CobaltModule M = parseCobaltOrDie(R"(
    label isSkip() := case currStmt of skip => true else => false endcase;

    optimization a := forward stmt(Y := C) followed by !isSkip()
      until X := Y => X := C with witness eta(Y) = eta(C);

    optimization b := forward stmt(Y := C) followed by true
      until X := Y => X := C with witness eta(Y) = eta(C);
  )");
  EXPECT_EQ(M.Optimizations.size(), 2u);
  EXPECT_EQ(M.Optimizations[0].Labels.size(), 1u);
  EXPECT_EQ(M.Optimizations[1].Labels.size(), 1u);
}

} // namespace
