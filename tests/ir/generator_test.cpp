//===- generator_test.cpp - Property tests for the program generator ------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Generator.h"

#include "ir/Cfg.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Sweep over seeds and configurations: every generated program must be
/// well-formed, round-trippable, and must terminate (or get stuck, when
/// division is enabled) within a generous fuel budget.
struct GenCase {
  GenOptions Options;
  const char *Name;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, WellFormedAcrossSeeds) {
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    Program Prog = generateProgram(GetParam().Options, Seed);
    EXPECT_FALSE(validateProgram(Prog).has_value()) << toString(Prog);
  }
}

TEST_P(GeneratorProperty, Deterministic) {
  Program A = generateProgram(GetParam().Options, 7);
  Program B = generateProgram(GetParam().Options, 7);
  EXPECT_EQ(A, B);
  Program C = generateProgram(GetParam().Options, 8);
  EXPECT_NE(toString(A), toString(C)); // overwhelmingly likely
}

TEST_P(GeneratorProperty, RoundTripsThroughText) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    Program Prog = generateProgram(GetParam().Options, Seed);
    Program Again = parseProgramOrDie(toString(Prog));
    EXPECT_EQ(Prog, Again);
  }
}

TEST_P(GeneratorProperty, TerminatesWithinFuel) {
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    Program Prog = generateProgram(GetParam().Options, Seed);
    Interpreter Interp(Prog);
    for (int64_t Input : {-3, 0, 7}) {
      RunResult R = Interp.run(Input, /*Fuel=*/200000);
      // Stuck runs are legal when division is enabled (divide by zero) --
      // stuckness is part of the semantics -- but fuel exhaustion would
      // mean an unbounded loop, which the generator must never emit.
      EXPECT_FALSE(R.outOfFuel())
          << "seed " << Seed << " input " << Input << "\n"
          << toString(Prog);
      if (!GetParam().Options.WithDivision) {
        EXPECT_TRUE(R.returned())
            << "seed " << Seed << " input " << Input << ": " << R.str()
            << "\n"
            << toString(Prog);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, GeneratorProperty,
    ::testing::Values(
        GenCase{{}, "default"},
        GenCase{{.NumVars = 3, .NumStmts = 8, .WithLoops = false}, "tiny"},
        GenCase{{.NumVars = 8, .NumStmts = 60}, "large"},
        GenCase{{.WithPointers = true}, "pointers"},
        GenCase{{.NumHelperProcs = 2, .WithCalls = true}, "calls"},
        GenCase{{.NumHelperProcs = 2,
                 .WithPointers = true,
                 .WithCalls = true},
                "pointers_and_calls"},
        GenCase{{.WithDivision = true}, "division"},
        GenCase{{.NumVars = 2, .NumStmts = 120, .WithLoops = true},
                "loop_heavy"}),
    [](const ::testing::TestParamInfo<GenCase> &Info) {
      return Info.param.Name;
    });

TEST(GeneratorTest, RespectsStatementBudgetRoughly) {
  GenOptions Small{.NumVars = 3, .NumStmts = 5};
  GenOptions Big{.NumVars = 3, .NumStmts = 200};
  Program A = generateProgram(Small, 1);
  Program B = generateProgram(Big, 1);
  EXPECT_LT(A.findProc("main")->size(), B.findProc("main")->size());
}

} // namespace
