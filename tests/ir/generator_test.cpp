//===- generator_test.cpp - Property tests for the program generator ------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Generator.h"

#include "ir/Cfg.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Sweep over seeds and configurations: every generated program must be
/// well-formed, round-trippable, and must terminate (or get stuck, when
/// division is enabled) within a generous fuel budget.
struct GenCase {
  GenOptions Options;
  const char *Name;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, WellFormedAcrossSeeds) {
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    Program Prog = generateProgram(GetParam().Options, Seed);
    EXPECT_FALSE(validateProgram(Prog).has_value()) << toString(Prog);
  }
}

TEST_P(GeneratorProperty, Deterministic) {
  Program A = generateProgram(GetParam().Options, 7);
  Program B = generateProgram(GetParam().Options, 7);
  EXPECT_EQ(A, B);
  Program C = generateProgram(GetParam().Options, 8);
  EXPECT_NE(toString(A), toString(C)); // overwhelmingly likely
}

TEST_P(GeneratorProperty, RoundTripsThroughText) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    Program Prog = generateProgram(GetParam().Options, Seed);
    Program Again = parseProgramOrDie(toString(Prog));
    EXPECT_EQ(Prog, Again);
  }
}

TEST_P(GeneratorProperty, TerminatesWithinFuel) {
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    Program Prog = generateProgram(GetParam().Options, Seed);
    Interpreter Interp(Prog);
    for (int64_t Input : {-3, 0, 7}) {
      RunResult R = Interp.run(Input, /*Fuel=*/200000);
      // Stuck runs are legal when division is enabled (divide by zero) --
      // stuckness is part of the semantics -- but fuel exhaustion would
      // mean an unbounded loop, which the generator must never emit.
      EXPECT_FALSE(R.outOfFuel())
          << "seed " << Seed << " input " << Input << "\n"
          << toString(Prog);
      // Aliasing pressure and bait idioms can overwrite a pointer with
      // an integer (or dereference a helper's integer return), so they
      // introduce legal stuck states just like division does.
      const GenOptions &O = GetParam().Options;
      bool MayStick = O.WithDivision || O.AliasPressure > 0 ||
                      (O.BaitPressure > 0 && O.WithPointers);
      if (!MayStick) {
        EXPECT_TRUE(R.returned())
            << "seed " << Seed << " input " << Input << ": " << R.str()
            << "\n"
            << toString(Prog);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, GeneratorProperty,
    ::testing::Values(
        GenCase{{}, "default"},
        GenCase{{.NumVars = 3, .NumStmts = 8, .WithLoops = false}, "tiny"},
        GenCase{{.NumVars = 8, .NumStmts = 60}, "large"},
        GenCase{{.WithPointers = true}, "pointers"},
        GenCase{{.NumHelperProcs = 2, .WithCalls = true}, "calls"},
        GenCase{{.NumHelperProcs = 2,
                 .WithPointers = true,
                 .WithCalls = true},
                "pointers_and_calls"},
        GenCase{{.WithDivision = true}, "division"},
        GenCase{{.NumVars = 2, .NumStmts = 120, .WithLoops = true},
                "loop_heavy"},
        GenCase{{.WithGotos = true, .WithReturnInLoop = true}, "gotos"},
        GenCase{{.WithPointers = true, .AliasPressure = 55}, "alias"},
        GenCase{{.NumHelperProcs = 2,
                 .WithPointers = true,
                 .WithCalls = true,
                 .AliasPressure = 15,
                 .BaitPressure = 45},
                "bait"}),
    [](const ::testing::TestParamInfo<GenCase> &Info) {
      return Info.param.Name;
    });

/// Distribution guard: with every feature enabled, each statement kind
/// and each pointer/division expression shape must show up within a
/// bounded seed budget. This is what keeps the fuzzer's habitats honest:
/// a refactor that silently stops emitting (say) provably-zero divisors
/// would otherwise only surface as slowly-degrading fuzz coverage.
TEST(GeneratorTest, EveryStatementKindAppearsWithin500Seeds) {
  GenOptions O;
  O.NumHelperProcs = 2;
  O.WithPointers = true;
  O.WithCalls = true;
  O.WithDivision = true;
  O.WithGotos = true;
  O.WithReturnInLoop = true;
  O.AliasPressure = 20;
  O.BaitPressure = 25;

  bool Decl = false, Skip = false, Assign = false, New = false,
       CallS = false, Branch = false, Return = false, Load = false,
       Store = false, AddrOf = false, Division = false, ZeroDiv = false;
  auto AllSeen = [&] {
    return Decl && Skip && Assign && New && CallS && Branch && Return &&
           Load && Store && AddrOf && Division && ZeroDiv;
  };

  for (uint64_t Seed = 0; Seed < 500 && !AllSeen(); ++Seed) {
    Program Prog = generateProgram(O, Seed);
    for (const Procedure &P : Prog.Procs) {
      for (const Stmt &S : P.Stmts) {
        if (std::get_if<DeclStmt>(&S.V))
          Decl = true;
        else if (std::get_if<SkipStmt>(&S.V))
          Skip = true;
        else if (std::get_if<NewStmt>(&S.V))
          New = true;
        else if (std::get_if<CallStmt>(&S.V))
          CallS = true;
        else if (std::get_if<BranchStmt>(&S.V))
          Branch = true;
        else if (std::get_if<ReturnStmt>(&S.V))
          Return = true;
        else if (const auto *A = std::get_if<AssignStmt>(&S.V)) {
          Assign = true;
          if (std::get_if<DerefExpr>(&A->Target))
            Store = true;
          if (std::get_if<DerefExpr>(&A->Value.V))
            Load = true;
          if (std::get_if<AddrOfExpr>(&A->Value.V))
            AddrOf = true;
          if (const auto *Op = std::get_if<OpExpr>(&A->Value.V)) {
            if (Op->Op == "/" || Op->Op == "%") {
              Division = true;
              const BaseExpr &Divisor = Op->Args.back();
              if (isConst(Divisor) && asConst(Divisor).Value == 0)
                ZeroDiv = true;
            }
          }
        }
      }
    }
  }

  EXPECT_TRUE(Decl);
  EXPECT_TRUE(Skip);
  EXPECT_TRUE(Assign);
  EXPECT_TRUE(New);
  EXPECT_TRUE(CallS);
  EXPECT_TRUE(Branch);
  EXPECT_TRUE(Return);
  EXPECT_TRUE(Load) << "no *p load emitted in 500 seeds";
  EXPECT_TRUE(Store) << "no *p := e store emitted in 500 seeds";
  EXPECT_TRUE(AddrOf) << "no &x emitted in 500 seeds";
  EXPECT_TRUE(Division) << "no '/' or '%' emitted in 500 seeds";
  EXPECT_TRUE(ZeroDiv)
      << "no provably-zero divisor emitted in 500 seeds (the "
         "WithDivision coverage-gap regression)";
}

TEST(GeneratorTest, RespectsStatementBudgetRoughly) {
  GenOptions Small{.NumVars = 3, .NumStmts = 5};
  GenOptions Big{.NumVars = 3, .NumStmts = 200};
  Program A = generateProgram(Small, 1);
  Program B = generateProgram(Big, 1);
  EXPECT_LT(A.findProc("main")->size(), B.findProc("main")->size());
}

} // namespace
