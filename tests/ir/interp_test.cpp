//===- interp_test.cpp - Unit tests for the IL interpreter ----------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

RunResult runMain(const char *Text, int64_t Input) {
  Program Prog = parseProgramOrDie(Text);
  Interpreter Interp(Prog);
  return Interp.run(Input);
}

TEST(InterpTest, ReturnsInput) {
  RunResult R = runMain("proc main(x) { return x; }", 42);
  ASSERT_TRUE(R.returned()) << R.str();
  EXPECT_EQ(R.Result, Value::intV(42));
}

TEST(InterpTest, Arithmetic) {
  RunResult R = runMain(
      "proc main(x) { decl y; y := x * 3; y := y + 1; return y; }", 5);
  ASSERT_TRUE(R.returned()) << R.str();
  EXPECT_EQ(R.Result, Value::intV(16));
}

TEST(InterpTest, DeclInitializesToZero) {
  RunResult R = runMain("proc main(x) { decl y; return y; }", 7);
  ASSERT_TRUE(R.returned()) << R.str();
  EXPECT_EQ(R.Result, Value::intV(0));
}

TEST(InterpTest, ComparisonsYieldZeroOne) {
  RunResult R = runMain(
      "proc main(x) { decl y; y := x < 10; return y; }", 5);
  ASSERT_TRUE(R.returned());
  EXPECT_EQ(R.Result, Value::intV(1));
  R = runMain("proc main(x) { decl y; y := x < 10; return y; }", 15);
  ASSERT_TRUE(R.returned());
  EXPECT_EQ(R.Result, Value::intV(0));
}

TEST(InterpTest, BranchTakesThenOnNonzero) {
  const char *Text = R"(
    proc main(x) {
      decl y;
      if x goto t else f;
    t:
      y := 1;
      if 1 goto end else end;
    f:
      y := 2;
    end:
      return y;
    }
  )";
  EXPECT_EQ(runMain(Text, 5).Result, Value::intV(1));
  EXPECT_EQ(runMain(Text, 0).Result, Value::intV(2));
}

TEST(InterpTest, CountedLoop) {
  const char *Text = R"(
    proc main(n) {
      decl i;
      decl sum;
      decl g;
      i := 0;
      sum := 0;
    head:
      g := i < n;
      if g goto body else done;
    body:
      sum := sum + i;
      i := i + 1;
      if 1 goto head else head;
    done:
      return sum;
    }
  )";
  RunResult R = runMain(Text, 5);
  ASSERT_TRUE(R.returned()) << R.str();
  EXPECT_EQ(R.Result, Value::intV(0 + 1 + 2 + 3 + 4));
}

TEST(InterpTest, PointersToLocals) {
  const char *Text = R"(
    proc main(x) {
      decl y;
      decl p;
      p := &y;
      *p := x + 1;
      y := *p;
      return y;
    }
  )";
  RunResult R = runMain(Text, 9);
  ASSERT_TRUE(R.returned()) << R.str();
  EXPECT_EQ(R.Result, Value::intV(10));
}

TEST(InterpTest, AliasedStoreIsVisibleThroughVariable) {
  // Writing through p changes y: the §6 debugging scenario's root cause.
  const char *Text = R"(
    proc main(x) {
      decl y;
      decl p;
      y := 1;
      p := &y;
      *p := 99;
      return y;
    }
  )";
  EXPECT_EQ(runMain(Text, 0).Result, Value::intV(99));
}

TEST(InterpTest, HeapAllocation) {
  const char *Text = R"(
    proc main(x) {
      decl p;
      decl q;
      decl r;
      p := new;
      q := new;
      *p := 5;
      *q := 6;
      r := *p;
      return r;
    }
  )";
  EXPECT_EQ(runMain(Text, 0).Result, Value::intV(5));
}

TEST(InterpTest, ProcedureCallAndReturn) {
  const char *Text = R"(
    proc double(a) { decl t; t := a * 2; return t; }
    proc main(x) { decl y; y := double(x); y := y + 1; return y; }
  )";
  EXPECT_EQ(runMain(Text, 10).Result, Value::intV(21));
}

TEST(InterpTest, RecursionComputesFactorial) {
  const char *Text = R"(
    proc fact(n) {
      decl r;
      decl g;
      decl m;
      g := n <= 1;
      if g goto base else rec;
    base:
      r := 1;
      if 1 goto end else end;
    rec:
      m := n - 1;
      r := fact(m);
      r := r * n;
    end:
      return r;
    }
    proc main(x) { decl y; y := fact(x); return y; }
  )";
  EXPECT_EQ(runMain(Text, 5).Result, Value::intV(120));
}

TEST(InterpTest, CalleeCannotSeeCallerLocalsButPointersWork) {
  // The callee receives a pointer to a caller local and writes through it.
  const char *Text = R"(
    proc setit(p) { decl z; *p := 77; z := 0; return z; }
    proc main(x) {
      decl y;
      decl p;
      decl t;
      y := 1;
      p := &y;
      t := setit(p);
      return y;
    }
  )";
  EXPECT_EQ(runMain(Text, 0).Result, Value::intV(77));
}

//===--------------------------------------------------------------------===//
// Stuck states: run-time errors are the absence of transitions (§3.1).
//===--------------------------------------------------------------------===//

TEST(InterpTest, StuckOnUndeclaredVariable) {
  RunResult R = runMain("proc main(x) { decl y; y := z; return y; }", 0);
  ASSERT_TRUE(R.stuck());
  EXPECT_NE(R.StuckReason.find("undeclared"), std::string::npos);
  EXPECT_EQ(R.StuckIndex, 1);
}

TEST(InterpTest, StuckOnDerefOfInteger) {
  RunResult R = runMain(
      "proc main(x) { decl y; decl p; p := 3; y := *p; return y; }", 0);
  ASSERT_TRUE(R.stuck());
  EXPECT_NE(R.StuckReason.find("non-pointer"), std::string::npos);
}

TEST(InterpTest, StuckOnDivisionByZero) {
  RunResult R = runMain("proc main(x) { decl y; y := 1 / x; return y; }", 0);
  ASSERT_TRUE(R.stuck());
  EXPECT_NE(R.StuckReason.find("zero"), std::string::npos);
  // Nonzero divisor works.
  EXPECT_TRUE(
      runMain("proc main(x) { decl y; y := 10 / x; return y; }", 2)
          .returned());
}

TEST(InterpTest, StuckOnArithmeticOverPointer) {
  RunResult R = runMain(
      "proc main(x) { decl y; decl p; p := &y; y := p + 1; return y; }", 0);
  ASSERT_TRUE(R.stuck());
  EXPECT_NE(R.StuckReason.find("pointer"), std::string::npos);
}

TEST(InterpTest, StuckOnBranchOverPointer) {
  RunResult R = runMain(
      "proc main(x) { decl p; p := &x; if p goto 2 else 2; return x; }", 0);
  ASSERT_TRUE(R.stuck());
}

TEST(InterpTest, InfiniteLoopRunsOutOfFuel) {
  Program Prog = parseProgramOrDie(
      "proc main(x) { l: if 1 goto l else l; return x; }");
  Interpreter Interp(Prog);
  RunResult R = Interp.run(0, /*Fuel=*/1000);
  EXPECT_TRUE(R.outOfFuel());
}

//===--------------------------------------------------------------------===//
// Step relations.
//===--------------------------------------------------------------------===//

TEST(InterpTest, StepOverRunsCalleeToCompletion) {
  Program Prog = parseProgramOrDie(R"(
    proc inc(a) { decl t; t := a + 1; return t; }
    proc main(x) { decl y; y := inc(x); return y; }
  )");
  Interpreter Interp(Prog);
  ExecState St = Interp.initialState(5);
  ASSERT_EQ(Interp.step(St), StepResult::SR_Ok); // decl y
  EXPECT_EQ(St.Index, 1);
  ASSERT_EQ(Interp.stepOver(St), StepResult::SR_Ok); // whole call
  EXPECT_EQ(St.Proc->Name, "main");
  EXPECT_EQ(St.Index, 2);
  EXPECT_EQ(*St.readVar("y"), Value::intV(6));
}

TEST(InterpTest, StepOverOnNonCallIsOneStep) {
  Program Prog = parseProgramOrDie("proc main(x) { skip; return x; }");
  Interpreter Interp(Prog);
  ExecState St = Interp.initialState(1);
  ASSERT_EQ(Interp.stepOver(St), StepResult::SR_Ok);
  EXPECT_EQ(St.Index, 1);
}

TEST(InterpTest, StepOverDivergingCalleeHasNoTransition) {
  Program Prog = parseProgramOrDie(R"(
    proc spin(a) { l: if 1 goto l else l; return a; }
    proc main(x) { decl y; y := spin(x); return y; }
  )");
  Interpreter Interp(Prog);
  ExecState St = Interp.initialState(0);
  ASSERT_EQ(Interp.step(St), StepResult::SR_Ok); // decl
  EXPECT_EQ(Interp.stepOver(St, /*Fuel=*/500), StepResult::SR_Stuck);
}

TEST(InterpTest, TraceRecordsProcedureAndIndex) {
  Program Prog = parseProgramOrDie("proc main(x) { skip; return x; }");
  Interpreter Interp(Prog);
  std::vector<std::pair<std::string, int>> Trace;
  RunResult R = Interp.runWithTrace(3, Trace);
  ASSERT_TRUE(R.returned());
  ASSERT_EQ(Trace.size(), 2u);
  EXPECT_EQ(Trace[0], (std::pair<std::string, int>("main", 0)));
  EXPECT_EQ(Trace[1], (std::pair<std::string, int>("main", 1)));
}

TEST(InterpTest, DeterministicAllocationOrder) {
  // Two identical runs produce identical results including locations.
  const char *Text = R"(
    proc main(x) { decl p; p := new; *p := x; x := *p; return x; }
  )";
  Program Prog = parseProgramOrDie(Text);
  Interpreter I1(Prog), I2(Prog);
  RunResult R1 = I1.run(5), R2 = I2.run(5);
  ASSERT_TRUE(R1.returned());
  EXPECT_EQ(R1.Result, R2.Result);
  EXPECT_EQ(R1.Steps, R2.Steps);
}

} // namespace
