//===- parser_test.cpp - Unit tests for the IL parser ---------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

TEST(ParserTest, MinimalProgram) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("proc main(x) { return x; }", Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  ASSERT_EQ(Prog->Procs.size(), 1u);
  EXPECT_EQ(Prog->Procs[0].Name, "main");
  EXPECT_EQ(Prog->Procs[0].Param, "x");
  ASSERT_EQ(Prog->Procs[0].size(), 1);
  EXPECT_TRUE(Prog->Procs[0].stmtAt(0).is<ReturnStmt>());
}

TEST(ParserTest, AllStatementKinds) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(R"(
    proc helper(a) { return a; }
    proc main(x) {
      decl y;
      decl p;
      skip;
      y := 5;
      y := x + 1;
      p := &y;
      *p := 7;
      y := *p;
      p := new;
      y := helper(y);
      if y goto 11 else 12;
      return y;
      return x;
    }
  )",
                           Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  const Procedure &Main = *Prog->findProc("main");
  EXPECT_TRUE(Main.stmtAt(0).is<DeclStmt>());
  EXPECT_TRUE(Main.stmtAt(2).is<SkipStmt>());
  EXPECT_TRUE(Main.stmtAt(3).is<AssignStmt>());
  EXPECT_TRUE(Main.stmtAt(5).is<AssignStmt>());
  EXPECT_TRUE(isVarLhs(Main.stmtAt(5).as<AssignStmt>().Target));
  EXPECT_FALSE(isVarLhs(Main.stmtAt(6).as<AssignStmt>().Target));
  EXPECT_TRUE(Main.stmtAt(8).is<NewStmt>());
  EXPECT_TRUE(Main.stmtAt(9).is<CallStmt>());
  EXPECT_TRUE(Main.stmtAt(10).is<BranchStmt>());
}

TEST(ParserTest, LabelsResolveToIndices) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(R"(
    proc main(n) {
      decl i;
      decl g;
      i := 0;
    loop:
      g := i < n;
      if g goto body else done;
    body:
      i := i + 1;
      if 1 goto loop else loop;
    done:
      return i;
    }
  )",
                           Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  const Procedure &Main = Prog->Procs[0];
  const auto &Head = Main.stmtAt(4).as<BranchStmt>();
  EXPECT_EQ(Head.Then.Value, 5);
  EXPECT_EQ(Head.Else.Value, 7);
  const auto &Back = Main.stmtAt(6).as<BranchStmt>();
  EXPECT_EQ(Back.Then.Value, 3);
  EXPECT_EQ(Back.Else.Value, 3);
}

TEST(ParserTest, ForwardLabelReferenceWorks) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(R"(
    proc main(x) {
      if x goto yes else no;
    yes:
      x := 1;
    no:
      return x;
    }
  )",
                           Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  const auto &B = Prog->Procs[0].stmtAt(0).as<BranchStmt>();
  EXPECT_EQ(B.Then.Value, 1);
  EXPECT_EQ(B.Else.Value, 2);
}

TEST(ParserTest, UndefinedLabelIsAnError) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(
      "proc main(x) { if x goto nowhere else nowhere; return x; }", Diags);
  EXPECT_FALSE(Prog.has_value());
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("nowhere"), std::string::npos);
}

TEST(ParserTest, DuplicateLabelIsAnError) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(
      "proc main(x) { l: skip; l: return x; }", Diags);
  EXPECT_FALSE(Prog.has_value());
}

TEST(ParserTest, NegativeConstants) {
  DiagnosticEngine Diags;
  auto Prog =
      parseProgram("proc main(x) { decl y; y := -5; return y; }", Diags);
  ASSERT_TRUE(Prog.has_value()) << Diags.str();
  const auto &A = Prog->Procs[0].stmtAt(1).as<AssignStmt>();
  const auto *C = std::get_if<ConstVal>(&A.Value.V);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Value, -5);
}

TEST(ParserTest, RoundTripThroughPrinter) {
  const char *Text = R"(
    proc helper(a) { decl t; t := a * 2; return t; }
    proc main(x) {
      decl y;
      decl p;
      decl g;
      p := &y;
      *p := x + 3;
      y := helper(y);
      g := y >= 10;
      if g goto 8 else 9;
      y := 0;
      return y;
    }
  )";
  Program Prog = parseProgramOrDie(Text);
  std::string Printed = toString(Prog);
  Program Again = parseProgramOrDie(Printed);
  EXPECT_EQ(Prog, Again) << Printed;
}

TEST(ParserTest, PatternModeClassifiesByConvention) {
  // Paper convention: upper-case = pattern variable; C* are Consts
  // patterns, E* are Exprs patterns, rest are Vars patterns.
  Stmt S = parseStmtPatternOrDie("X := Y");
  const auto &A = S.as<AssignStmt>();
  EXPECT_TRUE(std::get<Var>(A.Target).IsMeta);
  EXPECT_TRUE(A.Value.is<Var>());
  EXPECT_TRUE(A.Value.as<Var>().IsMeta);

  Stmt S2 = parseStmtPatternOrDie("Y := C");
  EXPECT_TRUE(S2.as<AssignStmt>().Value.is<ConstVal>());
  EXPECT_TRUE(S2.as<AssignStmt>().Value.as<ConstVal>().IsMeta);

  Stmt S3 = parseStmtPatternOrDie("X := E");
  EXPECT_TRUE(S3.as<AssignStmt>().Value.is<MetaExpr>());

  // Lower-case identifiers stay concrete even in pattern mode.
  Stmt S4 = parseStmtPatternOrDie("x := y");
  EXPECT_FALSE(std::get<Var>(S4.as<AssignStmt>().Target).IsMeta);
}

TEST(ParserTest, PatternModeEllipsisAndWildcard) {
  Stmt S = parseStmtPatternOrDie("X := ...");
  EXPECT_TRUE(S.as<AssignStmt>().Value.is<MetaExpr>());
  EXPECT_TRUE(S.as<AssignStmt>().Value.as<MetaExpr>().isWildcard());

  Stmt R = parseStmtPatternOrDie("return ...");
  EXPECT_TRUE(R.as<ReturnStmt>().Value.isWildcard());

  Stmt W = parseStmtPatternOrDie("_ := E");
  EXPECT_TRUE(std::get<Var>(W.as<AssignStmt>().Target).isWildcard());
}

TEST(ParserTest, PatternModeCallAndDeref) {
  Stmt S = parseStmtPatternOrDie("X := P(Z)");
  const auto &C = S.as<CallStmt>();
  EXPECT_TRUE(C.Target.IsMeta);
  EXPECT_TRUE(C.Callee.IsMeta);
  EXPECT_TRUE(isVar(C.Arg));
  EXPECT_TRUE(asVar(C.Arg).IsMeta);

  Stmt S2 = parseStmtPatternOrDie("*X := Z");
  EXPECT_FALSE(isVarLhs(S2.as<AssignStmt>().Target));

  Stmt S3 = parseStmtPatternOrDie("X := &Y");
  EXPECT_TRUE(S3.as<AssignStmt>().Value.is<AddrOfExpr>());
}

TEST(ParserTest, ExplicitIndicesAreVerified) {
  DiagnosticEngine Diags;
  auto Good = parseProgram("proc main(x) { 0: skip; 1: return x; }", Diags);
  EXPECT_TRUE(Good.has_value()) << Diags.str();

  DiagnosticEngine Diags2;
  auto Bad = parseProgram("proc main(x) { 0: skip; 5: return x; }", Diags2);
  EXPECT_FALSE(Bad.has_value());
}

TEST(ParserTest, ErrorsCarryLocations) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("proc main(x) {\n  y := ;\n  return x;\n}", Diags);
  EXPECT_FALSE(Prog.has_value());
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics()[0].Loc.Line, 2u);
}

TEST(ParserTest, ValidationFailuresSurfaceAsDiagnostics) {
  DiagnosticEngine Diags;
  // Missing main.
  auto Prog = parseProgram("proc f(x) { return x; }", Diags);
  EXPECT_FALSE(Prog.has_value());
  EXPECT_NE(Diags.str().find("main"), std::string::npos);
}

} // namespace
