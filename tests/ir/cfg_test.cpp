//===- cfg_test.cpp - Unit tests for the CFG ------------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cfg.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

TEST(CfgTest, StraightLine) {
  Program Prog = parseProgramOrDie(
      "proc main(x) { decl y; y := 1; return y; }");
  Cfg G(Prog.Procs[0]);
  EXPECT_EQ(G.size(), 3);
  EXPECT_EQ(G.succs(0), std::vector<int>{1});
  EXPECT_EQ(G.succs(1), std::vector<int>{2});
  EXPECT_TRUE(G.succs(2).empty());
  EXPECT_TRUE(G.preds(0).empty());
  EXPECT_EQ(G.preds(2), std::vector<int>{1});
  EXPECT_EQ(G.exits(), std::vector<int>{2});
}

TEST(CfgTest, BranchHasTwoSuccessors) {
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      if x goto t else f;
    t:
      x := 1;
    f:
      return x;
    }
  )");
  Cfg G(Prog.Procs[0]);
  EXPECT_EQ(G.succs(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(G.preds(2), (std::vector<int>{0, 1}));
}

TEST(CfgTest, SelfEqualTargetsYieldOneSuccessor) {
  // `if 1 goto l else l` is the unconditional-jump idiom; the CFG must
  // not duplicate the edge.
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      if 1 goto end else end;
      x := 2;
    end:
      return x;
    }
  )");
  Cfg G(Prog.Procs[0]);
  EXPECT_EQ(G.succs(0), std::vector<int>{2});
  EXPECT_EQ(G.preds(2), (std::vector<int>{0, 1}));
}

TEST(CfgTest, LoopBackEdgeAndReachability) {
  Program Prog = parseProgramOrDie(R"(
    proc main(n) {
      decl i;
      decl g;
      i := 0;
    head:
      g := i < n;
      if g goto body else done;
    body:
      i := i + 1;
      if 1 goto head else head;
    done:
      return i;
    }
  )");
  Cfg G(Prog.Procs[0]);
  // Back edge: statement 6 -> 3.
  EXPECT_EQ(G.succs(6), std::vector<int>{3});
  // The loop head has two predecessors: initialization fallthrough and
  // the back edge.
  EXPECT_EQ(G.preds(3), (std::vector<int>{2, 6}));
  for (int I = 0; I < G.size(); ++I)
    EXPECT_TRUE(G.isReachable(I)) << "index " << I;
}

TEST(CfgTest, UnreachableCodeDetected) {
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      if 1 goto end else end;
      x := 5;
    end:
      return x;
    }
  )");
  Cfg G(Prog.Procs[0]);
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_FALSE(G.isReachable(1));
  EXPECT_TRUE(G.isReachable(2));
}

TEST(CfgTest, MultipleExits) {
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      if x goto a else b;
    a:
      return x;
    b:
      return x;
    }
  )");
  Cfg G(Prog.Procs[0]);
  EXPECT_EQ(G.exits(), (std::vector<int>{1, 2}));
  EXPECT_TRUE(G.isExit(1));
  EXPECT_FALSE(G.isExit(0));
}

TEST(CfgTest, CallIsAFallthroughNode) {
  // Intraprocedural CFGs step over calls (the paper's ↪π view).
  Program Prog = parseProgramOrDie(R"(
    proc f(a) { return a; }
    proc main(x) { x := f(x); return x; }
  )");
  Cfg G(*Prog.findProc("main"));
  EXPECT_EQ(G.succs(0), std::vector<int>{1});
}

} // namespace
