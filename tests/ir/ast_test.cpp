//===- ast_test.cpp - Unit tests for the IL AST ---------------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Ast.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

TEST(AstTest, StructuralEqualityIgnoresLocations) {
  Stmt A(SkipStmt{}, SourceLoc{1, 1});
  Stmt B(SkipStmt{}, SourceLoc{9, 9});
  EXPECT_EQ(A, B);
}

TEST(AstTest, VarEquality) {
  EXPECT_EQ(Var::concrete("x"), Var::concrete("x"));
  EXPECT_NE(Var::concrete("x"), Var::concrete("y"));
  EXPECT_NE(Var::concrete("x"), Var::meta("x"));
  EXPECT_TRUE(Var::wildcard().isWildcard());
  EXPECT_FALSE(Var::meta("X").isWildcard());
}

TEST(AstTest, GroundnessOfExprs) {
  EXPECT_TRUE(isGround(Expr(Var::concrete("x"))));
  EXPECT_FALSE(isGround(Expr(Var::meta("X"))));
  EXPECT_TRUE(isGround(Expr(ConstVal::concrete(3))));
  EXPECT_FALSE(isGround(Expr(ConstVal::meta("C"))));
  EXPECT_FALSE(isGround(Expr(MetaExpr{"E"})));
  EXPECT_TRUE(isGround(Expr(OpExpr{
      "+", {BaseExpr(Var::concrete("x")), BaseExpr(ConstVal::concrete(1))}})));
  EXPECT_FALSE(isGround(Expr(OpExpr{
      "+", {BaseExpr(Var::meta("X")), BaseExpr(ConstVal::concrete(1))}})));
}

TEST(AstTest, GroundnessOfStmts) {
  EXPECT_TRUE(isGround(Stmt(SkipStmt{})));
  EXPECT_TRUE(isGround(Stmt(DeclStmt{Var::concrete("x")})));
  EXPECT_FALSE(isGround(Stmt(DeclStmt{Var::meta("X")})));
  EXPECT_FALSE(isGround(
      Stmt(AssignStmt{Var::concrete("x"), Expr(MetaExpr{"E"})})));
  EXPECT_FALSE(isGround(Stmt(
      CallStmt{Var::concrete("x"), ProcName::meta("P"),
               BaseExpr(Var::concrete("y"))})));
}

TEST(AstTest, CollectMetaNamesInOrderWithoutDuplicates) {
  // X := op(X, C) has metas X, C with X first and deduplicated.
  Stmt S(AssignStmt{Var::meta("X"),
                    Expr(OpExpr{"+", {BaseExpr(Var::meta("X")),
                                      BaseExpr(ConstVal::meta("C"))}})});
  std::vector<std::string> Names;
  collectMetaNames(S, Names);
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "X");
  EXPECT_EQ(Names[1], "C");
}

TEST(AstTest, WildcardsAreNotCollected) {
  Stmt S(AssignStmt{Var::wildcard(), Expr(MetaExpr{""})});
  std::vector<std::string> Names;
  collectMetaNames(S, Names);
  EXPECT_TRUE(Names.empty());
}

TEST(AstTest, CollectUsedVarsReadsOnly) {
  // &x names x but does not read it.
  std::vector<Var> Used;
  collectUsedVars(Expr(AddrOfExpr{Var::concrete("x")}), Used);
  EXPECT_TRUE(Used.empty());

  Used.clear();
  collectUsedVars(Expr(DerefExpr{Var::concrete("p")}), Used);
  ASSERT_EQ(Used.size(), 1u);
  EXPECT_EQ(Used[0].Name, "p");

  Used.clear();
  collectUsedVars(Expr(OpExpr{"+", {BaseExpr(Var::concrete("a")),
                                    BaseExpr(Var::concrete("b"))}}),
                  Used);
  EXPECT_EQ(Used.size(), 2u);
}

TEST(AstTest, ValidateRejectsMissingReturn) {
  Procedure P;
  P.Name = "f";
  P.Param = "x";
  P.Stmts.push_back(Stmt(SkipStmt{}));
  auto Err = validateProcedure(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("return"), std::string::npos);
}

TEST(AstTest, ValidateRejectsDuplicateDecl) {
  Procedure P;
  P.Name = "f";
  P.Param = "x";
  P.Stmts.push_back(Stmt(DeclStmt{Var::concrete("y")}));
  P.Stmts.push_back(Stmt(DeclStmt{Var::concrete("y")}));
  P.Stmts.push_back(Stmt(ReturnStmt{Var::concrete("y")}));
  EXPECT_TRUE(validateProcedure(P).has_value());
}

TEST(AstTest, ValidateRejectsParamRedeclaration) {
  Procedure P;
  P.Name = "f";
  P.Param = "x";
  P.Stmts.push_back(Stmt(DeclStmt{Var::concrete("x")}));
  P.Stmts.push_back(Stmt(ReturnStmt{Var::concrete("x")}));
  EXPECT_TRUE(validateProcedure(P).has_value());
}

TEST(AstTest, ValidateRejectsOutOfRangeBranch) {
  Procedure P;
  P.Name = "f";
  P.Param = "x";
  P.Stmts.push_back(Stmt(BranchStmt{BaseExpr(Var::concrete("x")),
                                    Index::concrete(7), Index::concrete(1)}));
  P.Stmts.push_back(Stmt(ReturnStmt{Var::concrete("x")}));
  EXPECT_TRUE(validateProcedure(P).has_value());
}

TEST(AstTest, ValidateProgramRequiresMainAndResolvedCalls) {
  Program Prog;
  Procedure P;
  P.Name = "f";
  P.Param = "x";
  P.Stmts.push_back(Stmt(ReturnStmt{Var::concrete("x")}));
  Prog.Procs.push_back(P);
  EXPECT_TRUE(validateProgram(Prog).has_value()); // no main

  Prog.Procs[0].Name = "main";
  EXPECT_FALSE(validateProgram(Prog).has_value());

  Prog.Procs[0].Stmts.insert(
      Prog.Procs[0].Stmts.begin(),
      Stmt(CallStmt{Var::concrete("x"), ProcName::concrete("nosuch"),
                    BaseExpr(ConstVal::concrete(1))}));
  EXPECT_TRUE(validateProgram(Prog).has_value()); // unresolved callee
}

TEST(AstTest, PrinterRendersPatternsDistinctly) {
  Stmt S = parseStmtPatternOrDie("X := Y + C");
  std::string Text = toString(S);
  EXPECT_EQ(Text, "?X := ?Y + ?C");
}

} // namespace
