//===- trace_equivalence_test.cpp - Telemetry is --jobs invariant ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability counterpart of the pipeline's determinism promise:
/// a fixed two-pass run (const_prop + cse over the same program) must
/// produce the *same telemetry* at --jobs 1 and --jobs 4 — the same
/// span multiset (names, categories, and args; timestamps and lanes are
/// wall-clock/scheduling artifacts and are ignored), the same curated
/// counters (checker.*, engine.*, dataflow.* — threadpool.* legitimately
/// differs between inline and pooled execution), and the same remark
/// sequence. Also pinned under an injected prover stall
/// (checker.prover_stall_ms), which perturbs wall time but must not
/// perturb any deterministic telemetry.
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "ir/Printer.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

using namespace cobalt;
using support::ScopedFaultPlan;

namespace {

const char *ProgramSource = R"(
proc main(n) {
  decl a;
  decl b;
  decl x;
  decl y;
  decl r;
  a := 2;
  b := a;
  x := b + 3;
  y := b + 3;
  r := x + y;
  return r;
}
)";

/// Everything deterministic one run produces.
struct RunTelemetry {
  std::vector<std::string> Spans;      ///< "cat/name{k=v,...}", sorted.
  std::map<std::string, uint64_t> Counters; ///< Curated subset.
  std::vector<std::string> Remarks;    ///< In delivery order.
  std::string OptimizedProgram;
};

bool curated(const std::string &Name) {
  return Name.rfind("checker.", 0) == 0 || Name.rfind("engine.", 0) == 0 ||
         Name.rfind("dataflow.", 0) == 0;
}

RunTelemetry runOnce(unsigned Jobs) {
  api::CobaltConfig Config;
  Config.Jobs = Jobs;
  Config.Telemetry = true;
  api::CobaltContext Ctx(Config);

  RunTelemetry Out;
  Ctx.setRemarkCallback([&Out](const support::Remark &R) {
    Out.Remarks.push_back(R.str());
  });
  Ctx.addOptimization(opts::constProp());
  Ctx.addOptimization(opts::cse());

  api::SuiteResult Suite = Ctx.checkRegistered();
  EXPECT_TRUE(Suite.allSound());

  auto Prog = Ctx.parseProgram(ProgramSource);
  EXPECT_TRUE(static_cast<bool>(Prog));
  api::PipelineResult Run =
      Ctx.runPipeline(*Prog, Suite.provenPassNames());
  EXPECT_GT(Run.Applied, 0u);
  Out.OptimizedProgram = ir::toString(*Prog);

  support::Telemetry *T = Ctx.telemetry();
  EXPECT_NE(T, nullptr);
  for (const support::TraceEvent &E : T->Trace.snapshot()) {
    std::string Key = std::string(E.Cat) + "/" + E.Name + "{";
    for (const auto &[K, V] : E.Args)
      Key += std::string(K) + "=" + V + ",";
    Key += "}";
    Out.Spans.push_back(std::move(Key));
  }
  std::sort(Out.Spans.begin(), Out.Spans.end());

  for (const auto &[Name, Value] : T->Metrics.counters())
    if (curated(Name))
      Out.Counters.emplace(Name, Value);
  return Out;
}

void expectSameTelemetry(const RunTelemetry &A, const RunTelemetry &B) {
  EXPECT_EQ(A.OptimizedProgram, B.OptimizedProgram);
  EXPECT_EQ(A.Remarks, B.Remarks);
  EXPECT_EQ(A.Counters, B.Counters);
  EXPECT_EQ(A.Spans, B.Spans);
}

TEST(TraceEquivalenceTest, SameSpanSetAcrossJobWidths) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry compiled out (-DCOBALT_TELEMETRY=OFF)";
  RunTelemetry Sequential = runOnce(1);
  RunTelemetry Parallel = runOnce(4);

  // Sanity: the run actually produced telemetry worth comparing.
  EXPECT_FALSE(Sequential.Spans.empty());
  EXPECT_GT(Sequential.Counters.at("checker.obligations"), 0u);
  EXPECT_GT(Sequential.Counters.at("engine.rewrites"), 0u);
  EXPECT_GT(Sequential.Counters.at("dataflow.fixpoint_iters"), 0u);
  EXPECT_FALSE(Sequential.Remarks.empty());

  expectSameTelemetry(Sequential, Parallel);
}

TEST(TraceEquivalenceTest, SameSpanSetUnderInjectedProverStall) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry compiled out (-DCOBALT_TELEMETRY=OFF)";
  // The stall payload delays every prover call by a fixed wall amount:
  // span durations change, deterministic telemetry must not.
  ScopedFaultPlan Plan("checker.prover_stall_ms=15");
  RunTelemetry Sequential = runOnce(1);
  RunTelemetry Parallel = runOnce(4);
  EXPECT_FALSE(Sequential.Spans.empty());
  expectSameTelemetry(Sequential, Parallel);
}

TEST(TraceEquivalenceTest, StallDoesNotChangeSpanSetEither) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry compiled out (-DCOBALT_TELEMETRY=OFF)";
  // Cross-check: the faulted run and the clean run also agree on the
  // span *set* — the stall is invisible outside of wall time.
  RunTelemetry Clean = runOnce(1);
  RunTelemetry Stalled = [] {
    ScopedFaultPlan Plan("checker.prover_stall_ms=15");
    return runOnce(1);
  }();
  expectSameTelemetry(Clean, Stalled);
}

} // namespace
