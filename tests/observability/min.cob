// Minimal label-free module for the trace_lint ctest: two sound
// definitions that prove in well under a second, so the test exercises
// the --trace-out plumbing rather than the prover.

optimization const_fold_add :=
  forward
  computes(C1 + C2, C3)
  followed by true
  until X := C1 + C2 => X := C3
  with witness eta(C1 + C2) = eta(C3);

optimization self_assign_removal :=
  backward
  true
  preceded by false
  since X := X => skip
  with witness eta_old = eta_new;
