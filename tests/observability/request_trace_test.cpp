//===- request_trace_test.cpp - Distributed tracing through the daemon ----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end observability through the service tier (DESIGN.md §9,
/// §13): a fixed request sequence produces the same deterministic
/// telemetry at --jobs 1 and --jobs 4 through the real Daemon + Client
/// path; subprocess prover workers ship their span buffers back across
/// the fork so the parent's trace merges daemon, service, and worker
/// spans under one request trace ID (even while an injected
/// worker.crash plan is killing a fifth of them); and a quarantine
/// trips the flight-recorder dump, whose JSON names the quarantined
/// obligation.
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Protocol.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>
#include <unistd.h>

using namespace cobalt;
using support::ScopedFaultPlan;
namespace faults = cobalt::support::faults;

namespace {

const char *ProgramSource = R"(
proc main(n) {
  decl a;
  decl b;
  decl x;
  decl y;
  decl r;
  a := 2;
  b := a;
  x := b + 3;
  y := b + 3;
  r := x + y;
  return r;
}
)";

std::shared_ptr<api::CobaltService>
makeService(unsigned Jobs,
            checker::WorkerIsolation Isolation =
                checker::WorkerIsolation::WI_InProcess) {
  api::CobaltConfig Config;
  Config.Telemetry = true;
  Config.Jobs = Jobs;
  Config.Prover.Isolation = Isolation;
  api::CobaltService::Builder B;
  B.config(Config);
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  B.addOptimization(opts::constProp());
  B.addOptimization(opts::cse());
  return B.build();
}

std::string socketPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "/cobalt_rt_" + Tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

std::string tempFile(const char *Tag) {
  return std::string(::testing::TempDir()) + "/cobalt_rt_" + Tag + "_" +
         std::to_string(::getpid()) + ".json";
}

/// Sends one client request and returns the response body (empty on
/// transport failure — callers assert on content).
std::string ask(service::Daemon &D, const std::string &Frame) {
  service::Client C;
  if (C.connect(D.socketPath()).failed())
    return {};
  support::Expected<std::string> R = C.request(Frame, /*DeadlineMs=*/0);
  return R ? std::move(*R) : std::string();
}

/// The deterministic telemetry of one daemon session: the span multiset
/// keyed by cat/name/args (trace IDs, pids, lanes, and timestamps are
/// per-run artifacts and excluded by construction — identity lives in
/// dedicated TraceEvent fields, never Args) plus the curated counters.
struct SessionTelemetry {
  std::vector<std::string> Spans;
  std::map<std::string, uint64_t> Counters;
};

bool curatedCounter(const std::string &Name) {
  // threadpool.* legitimately differs between inline and pooled
  // execution; everything else deterministic rides along.
  return Name.rfind("threadpool.", 0) != 0;
}

SessionTelemetry harvest(api::CobaltService &Svc) {
  SessionTelemetry Out;
  support::Telemetry *T = Svc.telemetry();
  EXPECT_NE(T, nullptr);
  if (!T)
    return Out;
  for (const support::TraceEvent &E : T->Trace.snapshot()) {
    std::string Key = std::string(E.Cat) + "/" + E.Name + "{";
    for (const auto &[K, V] : E.Args)
      Key += std::string(K) + "=" + V + ",";
    Key += "}";
    Out.Spans.push_back(std::move(Key));
  }
  std::sort(Out.Spans.begin(), Out.Spans.end());
  for (const auto &[Name, Value] : T->Metrics.counters())
    if (curatedCounter(Name))
      Out.Counters.emplace(Name, Value);
  return Out;
}

/// Drives the fixed request sequence (check, run, stats) through the
/// real socket path and harvests the session telemetry.
SessionTelemetry runSession(unsigned Jobs, const char *Tag) {
  std::shared_ptr<api::CobaltService> Svc = makeService(Jobs);
  service::Daemon D(Svc, socketPath(Tag));
  EXPECT_FALSE(D.start().failed());

  std::string Check = ask(D, service::makeCheckRequest({}));
  EXPECT_NE(Check.find("\"status\": \"ok\""), std::string::npos);
  std::string Run = ask(
      D, service::makeRunRequest(ProgramSource, {}, /*SelectedOnly=*/false));
  EXPECT_NE(Run.find("\"status\": \"ok\""), std::string::npos);
  std::string Stats = ask(D, service::makeStatsRequest());
  EXPECT_NE(Stats.find("\"status\": \"ok\""), std::string::npos);
  D.stop();
  return harvest(*Svc);
}

TEST(RequestTrace, SameTelemetryAcrossJobWidthsThroughDaemon) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry compiled out (-DCOBALT_TELEMETRY=OFF)";
  SessionTelemetry Sequential = runSession(1, "jobs1");
  SessionTelemetry Parallel = runSession(4, "jobs4");

  // Sanity: the daemon tier actually contributed spans and counters.
  EXPECT_FALSE(Sequential.Spans.empty());
  auto Has = [&Sequential](const char *Prefix) {
    return std::any_of(Sequential.Spans.begin(), Sequential.Spans.end(),
                       [Prefix](const std::string &S) {
                         return S.rfind(Prefix, 0) == 0;
                       });
  };
  EXPECT_TRUE(Has("daemon/check"));
  EXPECT_TRUE(Has("daemon/run"));
  EXPECT_TRUE(Has("daemon/stats"));
  EXPECT_TRUE(Has("service/prove"));
  // check + run hit the service; stats is answered daemon-side.
  EXPECT_EQ(Sequential.Counters.at("service.requests"), 2u);
  EXPECT_GT(Sequential.Counters.at("checker.obligations"), 0u);

  EXPECT_EQ(Sequential.Spans, Parallel.Spans);
  EXPECT_EQ(Sequential.Counters, Parallel.Counters);
}

TEST(RequestTrace, WorkerSpansMergeUnderInjectedCrashes) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry compiled out (-DCOBALT_TELEMETRY=OFF)";
  std::shared_ptr<api::CobaltService> Svc =
      makeService(2, checker::WorkerIsolation::WI_Subprocess);
  service::Daemon D(Svc, socketPath("merge"));
  ASSERT_FALSE(D.start().failed());

  // A fifth of the workers die mid-request (same per-obligation draw at
  // every width); the survivors' span buffers must still merge.
  ScopedFaultPlan Plan(std::string(faults::WorkerCrash) + "%20",
                       /*Seed=*/9);
  constexpr uint64_t TraceId = 0xC0FFEE;
  std::string Check = ask(D, service::makeCheckRequest(
                                 {}, /*Jobs=*/0, /*BudgetMs=*/-1,
                                 /*FaultSalt=*/0, TraceId));
  ASSERT_NE(Check.find("\"status\": \"ok\""), std::string::npos);
  D.stop();

  support::Telemetry *T = Svc->telemetry();
  ASSERT_NE(T, nullptr);
  unsigned Merged = 0, Tagged = 0;
  bool DaemonSpanTagged = false;
  for (const support::TraceEvent &E : T->Trace.snapshot()) {
    if (E.Pid != 0) {
      ++Merged;
      EXPECT_STREQ(E.Name, "discharge");
      if (E.TraceId == TraceId)
        ++Tagged;
    }
    if (std::string_view(E.Cat) == "daemon" && E.TraceId == TraceId)
      DaemonSpanTagged = true;
  }
  // Imported worker spans exist, and every one is attributed to the
  // client's request ID — one distributed trace across the fork.
  EXPECT_GT(Merged, 0u);
  EXPECT_EQ(Tagged, Merged);
  EXPECT_TRUE(DaemonSpanTagged);

  // The merged JSON introduces the foreign pids to the trace viewer.
  std::string J = T->Trace.json();
  EXPECT_NE(J.find("\"process_name\""), std::string::npos);
  EXPECT_NE(J.find("\"prover-worker\""), std::string::npos);
  EXPECT_NE(J.find("\"trace_id\": \"0000000000c0ffee\""),
            std::string::npos);
}

TEST(RequestTrace, QuarantineDumpsFlightRecorder) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "telemetry compiled out (-DCOBALT_TELEMETRY=OFF)";
  std::shared_ptr<api::CobaltService> Svc =
      makeService(2, checker::WorkerIsolation::WI_Subprocess);
  service::Daemon D(Svc, socketPath("flight"));
  std::string FlightPath = tempFile("flight");
  std::remove(FlightPath.c_str());
  D.setFlightRecorderPath(FlightPath);
  ASSERT_FALSE(D.start().failed());

  // Every prover call crashes, every retry redraws the same decision:
  // the whole suite quarantines deterministically.
  ScopedFaultPlan Plan(std::string(faults::WorkerCrash) + "%100");
  std::string Check = ask(D, service::makeCheckRequest({}));
  ASSERT_NE(Check.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(Check.find("\"error\": \"worker_crash\""), std::string::npos);
  D.stop();

  // Pull one quarantined obligation's name out of the response so the
  // dump can be checked for it: {"name": "...", "status": "unknown"...
  std::string ObName;
  if (size_t Pos = Check.find("\"status\": \"unknown\"");
      Pos != std::string::npos) {
    size_t NameEnd = Check.rfind("\", \"status\"", Pos);
    size_t NameKey = Check.rfind("\"name\": \"", NameEnd);
    if (NameEnd != std::string::npos && NameKey != std::string::npos) {
      NameKey += 9; // strlen("\"name\": \"")
      ObName = Check.substr(NameKey, NameEnd - NameKey);
    }
  }
  ASSERT_FALSE(ObName.empty()) << Check;

  std::ifstream In(FlightPath);
  ASSERT_TRUE(In.good()) << "flight recorder was not dumped to "
                         << FlightPath;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Dump = Buf.str();
  EXPECT_NE(Dump.find("\"reason\": \"worker_quarantine\""),
            std::string::npos);
  EXPECT_NE(Dump.find("\"kind\": \"worker.quarantine\""),
            std::string::npos);
  EXPECT_NE(Dump.find("\"kind\": \"worker.spawn\""), std::string::npos);
  EXPECT_NE(Dump.find(ObName), std::string::npos)
      << "dump does not name quarantined obligation '" << ObName << "'";
  std::remove(FlightPath.c_str());

  // The explicit dump frame returns the same black box inline.
  service::Daemon D2(Svc, socketPath("flight2"));
  ASSERT_FALSE(D2.start().failed());
  std::string Inline = ask(D2, service::makeDumpRequest());
  D2.stop();
  EXPECT_NE(Inline.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(Inline.find("\"reason\": \"dump_frame\""), std::string::npos);
  EXPECT_NE(Inline.find("\"kind\": \"worker.quarantine\""),
            std::string::npos);
}

} // namespace
