# Drives the trace_lint ctest: produce a real trace with cobaltc, then
# validate it (JSON well-formedness + per-lane span nesting) with
# tools/trace_lint.py. Variables COBALTC, MODULE, PROGRAM, LINT, PYTHON,
# and OUT_DIR arrive from add_test.

execute_process(
  COMMAND ${COBALTC} opt ${MODULE} ${PROGRAM} --jobs 2
          --trace-out=${OUT_DIR}/trace_lint.json
          --metrics-out=${OUT_DIR}/metrics_lint.json
  RESULT_VARIABLE RC
  OUTPUT_QUIET)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "cobaltc exited ${RC}")
endif()

execute_process(
  COMMAND ${PYTHON} ${LINT} ${OUT_DIR}/trace_lint.json
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "trace_lint.py rejected the trace (${RC})")
endif()

# The metrics file must parse as JSON too (one json.load is enough).
execute_process(
  COMMAND ${PYTHON} -c "import json,sys; json.load(open(sys.argv[1]))"
          ${OUT_DIR}/metrics_lint.json
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "metrics JSON does not parse (${RC})")
endif()
