//===- telemetry_test.cpp - Metrics, traces, spans, remarks ---------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the telemetry substrate (DESIGN.md §9): the sharded
/// MetricsRegistry and its byte-stable JSON dump, the TraceRecorder's
/// Chrome trace output, RAII TraceSpan nesting and the ambient
/// TelemetryScope, and the Remark rendering the CLI's --remarks stream
/// relies on.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace cobalt;
using namespace cobalt::support;

namespace {

#if COBALT_TELEMETRY

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry M;
  EXPECT_EQ(M.counter("a"), 0u);
  M.add("a");
  M.add("a", 4);
  M.add("b", 2);
  EXPECT_EQ(M.counter("a"), 5u);
  EXPECT_EQ(M.counter("b"), 2u);
  auto All = M.counters();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All["a"], 5u);
  EXPECT_EQ(All["b"], 2u);
}

TEST(MetricsRegistryTest, Gauges) {
  MetricsRegistry M;
  M.gaugeSet("depth", 7);
  M.gaugeSet("depth", 3);
  EXPECT_EQ(M.gauge("depth"), 3);
  M.gaugeMax("high", 3);
  M.gaugeMax("high", 9);
  M.gaugeMax("high", 5);
  EXPECT_EQ(M.gauge("high"), 9);
}

TEST(MetricsRegistryTest, Histograms) {
  MetricsRegistry M;
  EXPECT_EQ(M.histogram("lat").Count, 0u);
  M.observe("lat", 2.0);
  M.observe("lat", 0.5);
  M.observe("lat", 4.0);
  HistogramStats H = M.histogram("lat");
  EXPECT_EQ(H.Count, 3u);
  EXPECT_DOUBLE_EQ(H.Sum, 6.5);
  EXPECT_DOUBLE_EQ(H.Min, 0.5);
  EXPECT_DOUBLE_EQ(H.Max, 4.0);
}

TEST(MetricsRegistryTest, PercentilesFromLogBuckets) {
  MetricsRegistry M;
  // Empty histogram: percentiles are 0, not NaN.
  EXPECT_DOUBLE_EQ(M.histogram("none").p50(), 0.0);
  // 100 observations 1..100 ms: the log-bucket estimate must land
  // within one sub-bucket (~19%) of the exact order statistic, and the
  // percentiles must be monotone and clamped into [Min, Max].
  for (int I = 1; I <= 100; ++I)
    M.observe("lat", static_cast<double>(I));
  HistogramStats H = M.histogram("lat");
  EXPECT_GT(H.p50(), 50.0 * 0.8);
  EXPECT_LT(H.p50(), 50.0 * 1.25);
  EXPECT_GT(H.p99(), 99.0 * 0.8);
  EXPECT_LE(H.p99(), 100.0);
  EXPECT_LE(H.p50(), H.p90());
  EXPECT_LE(H.p90(), H.p99());
  EXPECT_GE(H.p50(), H.Min);
  EXPECT_LE(H.p99(), H.Max);
}
TEST(MetricsRegistryTest, PercentileSingleObservationIsExact) {
  // One sample: every percentile is that sample (clamping to Min==Max).
  MetricsRegistry M;
  M.observe("lat", 2655.5);
  HistogramStats H = M.histogram("lat");
  EXPECT_DOUBLE_EQ(H.p50(), 2655.5);
  EXPECT_DOUBLE_EQ(H.p99(), 2655.5);
}

TEST(MetricsRegistryTest, HistogramJsonCarriesPercentiles) {
  MetricsRegistry M;
  M.observe("h", 1.5);
  std::string J = M.json();
  EXPECT_NE(J.find("\"p50\": "), std::string::npos);
  EXPECT_NE(J.find("\"p90\": "), std::string::npos);
  EXPECT_NE(J.find("\"p99\": "), std::string::npos);
  // The pre-percentile keys survive: goldens keyed on them still hold.
  EXPECT_NE(J.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"sum\": 1.500000"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonIsByteStableAndSorted) {
  // Two registries reaching the same state through different insertion
  // orders must serialize identically — the golden-file contract.
  MetricsRegistry A, B;
  A.add("zeta", 1);
  A.add("alpha", 2);
  A.gaugeSet("g", -3);
  A.observe("h", 1.5);
  B.observe("h", 1.5);
  B.gaugeSet("g", -3);
  B.add("alpha", 2);
  B.add("zeta", 1);
  EXPECT_EQ(A.json(), B.json());
  std::string J = A.json();
  EXPECT_LT(J.find("\"alpha\""), J.find("\"zeta\""));
  EXPECT_NE(J.find("\"g\": -3"), std::string::npos);
  EXPECT_NE(J.find("\"sum\": 1.500000"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyJsonShape) {
  MetricsRegistry M;
  std::string J = M.json();
  EXPECT_NE(J.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(J.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(J.find("\"histograms\": {}"), std::string::npos);
}

TEST(TraceRecorderTest, RecordsAndSerializes) {
  TraceRecorder R;
  TraceEvent E;
  E.Cat = "checker";
  E.Name = "obligation";
  E.Lane = 2;
  E.StartUs = 10;
  E.DurUs = 5;
  E.Args.emplace_back("verdict", "proven");
  R.record(E);
  EXPECT_EQ(R.eventCount(), 1u);

  std::string J = R.json();
  // Metadata rows name every lane up to the highest used one.
  EXPECT_NE(J.find("\"name\": \"driver\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"worker-1\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"cat\": \"checker\""), std::string::npos);
  EXPECT_NE(J.find("\"verdict\": \"proven\""), std::string::npos);
  EXPECT_NE(J.find("\"tid\": 2"), std::string::npos);
}

TEST(TraceRecorderTest, LaneIsThreadLocal) {
  EXPECT_EQ(TraceRecorder::currentLane(), 0u);
  std::thread T([] {
    EXPECT_EQ(TraceRecorder::currentLane(), 0u);
    TraceRecorder::setCurrentLane(3);
    EXPECT_EQ(TraceRecorder::currentLane(), 3u);
  });
  T.join();
  // The other thread's lane never leaked into this one.
  EXPECT_EQ(TraceRecorder::currentLane(), 0u);
}

TEST(TraceSpanTest, DisabledWithoutAmbientTelemetry) {
  ASSERT_EQ(Telemetry::active(), nullptr);
  TraceSpan Span("cat", "name");
  EXPECT_FALSE(Span.enabled());
  Span.arg("k", std::string("v")); // must be a no-op, not a crash
}

TEST(TraceSpanTest, RecordsUnderScope) {
  Telemetry T;
  {
    TelemetryScope Scope(&T);
    TraceSpan Outer("test", "outer");
    EXPECT_TRUE(Outer.enabled());
    Outer.arg("k", uint64_t(42));
    { TraceSpan Inner("test", "inner"); }
  }
  ASSERT_EQ(T.Trace.eventCount(), 2u);
  auto Events = T.Trace.snapshot();
  // Inner destructs first, so it is recorded first.
  EXPECT_STREQ(Events[0].Name, "inner");
  EXPECT_STREQ(Events[1].Name, "outer");
  ASSERT_EQ(Events[1].Args.size(), 1u);
  EXPECT_EQ(Events[1].Args[0].second, "42");
  // Nesting invariant the trace linter checks: inner ⊆ outer.
  EXPECT_GE(Events[0].StartUs, Events[1].StartUs);
  EXPECT_LE(Events[0].StartUs + Events[0].DurUs,
            Events[1].StartUs + Events[1].DurUs);
}

TEST(TraceSpanTest, TraceEnabledFalseSkipsSpansButNotMetrics) {
  Telemetry T;
  T.TraceEnabled = false;
  TelemetryScope Scope(&T);
  { TraceSpan Span("test", "span"); }
  metricAdd("still.counted");
  EXPECT_EQ(T.Trace.eventCount(), 0u);
  EXPECT_EQ(T.Metrics.counter("still.counted"), 1u);
}

TEST(TelemetryScopeTest, InstallsAndRestores) {
  EXPECT_EQ(Telemetry::active(), nullptr);
  metricAdd("dropped"); // no ambient sink: silently dropped
  Telemetry Outer, Inner;
  {
    TelemetryScope S1(&Outer);
    EXPECT_EQ(Telemetry::active(), &Outer);
    metricAdd("m");
    {
      TelemetryScope S2(&Inner);
      EXPECT_EQ(Telemetry::active(), &Inner);
      metricAdd("m");
    }
    EXPECT_EQ(Telemetry::active(), &Outer);
    {
      // nullptr scope is a no-op install: the outer session stays live.
      TelemetryScope S3(nullptr);
      EXPECT_EQ(Telemetry::active(), &Outer);
      metricAdd("m");
    }
  }
  EXPECT_EQ(Telemetry::active(), nullptr);
  EXPECT_EQ(Outer.Metrics.counter("m"), 2u);
  EXPECT_EQ(Inner.Metrics.counter("m"), 1u);
}

TEST(TraceIdTest, MintedIdsAreNonZeroAndDistinct) {
  uint64_t A = mintTraceId();
  uint64_t B = mintTraceId();
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_NE(A, B);
}

TEST(TraceIdTest, ScopeTagsSpansAndRestores) {
  Telemetry T;
  TelemetryScope Scope(&T);
  EXPECT_EQ(TraceRecorder::currentTraceId(), 0u);
  {
    TraceIdScope Outer(0x1111);
    { TraceSpan S("test", "outer-span"); }
    {
      // Nested requests attribute to the innermost ID.
      TraceIdScope Inner(0x2222);
      EXPECT_EQ(TraceRecorder::currentTraceId(), 0x2222u);
      { TraceSpan S("test", "inner-span"); }
    }
    EXPECT_EQ(TraceRecorder::currentTraceId(), 0x1111u);
  }
  EXPECT_EQ(TraceRecorder::currentTraceId(), 0u);
  auto Events = T.Trace.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].TraceId, 0x1111u); // outer-span
  EXPECT_EQ(Events[1].TraceId, 0x2222u); // inner-span
  // The ID renders as a synthetic 16-digit hex arg, never a real Arg
  // (span-set equivalence compares Args only).
  EXPECT_TRUE(Events[0].Args.empty());
  std::string J = T.Trace.json();
  EXPECT_NE(J.find("\"trace_id\": \"0000000000001111\""), std::string::npos);
}

TEST(TraceIdTest, TraceIdIsThreadLocal) {
  TraceIdScope Scope(0xABCD);
  std::thread Th([] {
    // Pool threads do not inherit the driver's ambient ID — callers
    // must re-establish it inside the task (as Soundness.cpp does).
    EXPECT_EQ(TraceRecorder::currentTraceId(), 0u);
  });
  Th.join();
}

TEST(TraceRecorderTest, SerializeImportRoundTrip) {
  // Simulates the worker fork boundary: a child recorder serializes its
  // spans with absolute timestamps; the parent imports, re-bases, and
  // stamps the worker pid.
  TraceRecorder Child;
  TraceEvent E;
  E.Cat = "checker";
  E.Name = "discharge";
  E.StartUs = 7;
  E.DurUs = 3;
  E.TraceId = 0xFEED;
  E.Args.emplace_back("ob", "assoc1");
  Child.record(E);

  TraceRecorder Parent;
  Parent.importSerialized(Child.serializeEvents(), /*Pid=*/4242);
  Parent.setProcessName(4242, "prover-worker");
  ASSERT_EQ(Parent.eventCount(), 1u);
  auto Events = Parent.snapshot();
  EXPECT_STREQ(Events[0].Name, "discharge");
  EXPECT_STREQ(Events[0].Cat, "checker");
  EXPECT_EQ(Events[0].Pid, 4242);
  EXPECT_EQ(Events[0].TraceId, 0xFEEDu);
  EXPECT_EQ(Events[0].DurUs, 3u);
  ASSERT_EQ(Events[0].Args.size(), 1u);
  EXPECT_STREQ(Events[0].Args[0].first, "ob");
  EXPECT_EQ(Events[0].Args[0].second, "assoc1");

  std::string J = Parent.json();
  EXPECT_NE(J.find("\"pid\": 4242"), std::string::npos);
  EXPECT_NE(J.find("\"prover-worker\""), std::string::npos);
  EXPECT_NE(J.find("\"process_name\""), std::string::npos);
}

TEST(TraceRecorderTest, ImportDropsMalformedLines) {
  TraceRecorder R;
  R.importSerialized("not\ta\tvalid\tline\n\ngarbage\n", /*Pid=*/7);
  EXPECT_EQ(R.eventCount(), 0u);
}

TEST(FlightRecorderTest, RecordsAndWraps) {
  FlightRecorder F(/*Capacity=*/4);
  EXPECT_EQ(F.capacity(), 4u);
  for (int I = 0; I < 6; ++I)
    F.note("worker.spawn", "pid " + std::to_string(I));
  auto Events = F.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  // Oldest two (0, 1) were overwritten; survivors are in order.
  EXPECT_EQ(Events.front().Detail, "pid 2");
  EXPECT_EQ(Events.back().Detail, "pid 5");
  EXPECT_LT(Events.front().Seq, Events.back().Seq);

  std::string J = F.json("worker_quarantine");
  EXPECT_NE(J.find("\"reason\": \"worker_quarantine\""), std::string::npos);
  EXPECT_NE(J.find("\"dropped\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"worker.spawn\""), std::string::npos);
  EXPECT_NE(J.find("\"pid 5\""), std::string::npos);
  EXPECT_EQ(J.find("\"pid 1\""), std::string::npos); // overwritten
}

TEST(FlightRecorderTest, NoteFillsAmbientTraceId) {
  FlightRecorder F;
  TraceIdScope Scope(0xBEEF);
  F.note("dedup.leader", "2 definition(s) to prove");
  F.note("worker.kill", "explicit id wins", 0x42);
  auto Events = F.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].TraceId, 0xBEEFu);
  EXPECT_EQ(Events[1].TraceId, 0x42u);
}

TEST(FlightRecorderTest, FlightNoteCountsEvents) {
  Telemetry T;
  TelemetryScope Scope(&T);
  flightNote("admission.reject", "3 obligation(s) over bound");
  EXPECT_EQ(T.Flight.snapshot().size(), 1u);
  EXPECT_EQ(T.Metrics.counter("flight.events"), 1u);
}

TEST(FlightRecorderTest, SetCapacityResetsRing) {
  FlightRecorder F(8);
  F.note("worker.spawn", "pid 1");
  F.setCapacity(2);
  EXPECT_EQ(F.capacity(), 2u);
  EXPECT_TRUE(F.snapshot().empty());
  std::string J = F.json();
  EXPECT_NE(J.find("\"flightEvents\": []"), std::string::npos);
  EXPECT_NE(J.find("\"reason\": \"dump\""), std::string::npos); // default
  EXPECT_NE(J.find("\"dropped\": 0"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentAddsAreLossless) {
  MetricsRegistry M;
  constexpr unsigned Threads = 8, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&M] {
      for (unsigned I = 0; I < PerThread; ++I) {
        M.add("shared");
        M.observe("h", 1.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(M.counter("shared"), uint64_t(Threads) * PerThread);
  EXPECT_EQ(M.histogram("h").Count, uint64_t(Threads) * PerThread);
}

#else // !COBALT_TELEMETRY

TEST(TelemetryOffTest, NullSinkCompilesOut) {
  // The -DCOBALT_TELEMETRY=OFF contract: active() folds to nullptr and
  // the stub emitters produce the canonical empty documents.
  EXPECT_FALSE(telemetryCompiledIn());
  EXPECT_EQ(Telemetry::active(), nullptr);
  MetricsRegistry M;
  M.add("a");
  EXPECT_EQ(M.counter("a"), 0u);
  EXPECT_EQ(M.json(), "{\"counters\": {}, \"gauges\": {}, "
                      "\"histograms\": {}}\n");
  TraceRecorder R;
  EXPECT_EQ(R.json(), "{\"traceEvents\": []}\n");
  FlightRecorder F;
  F.note("worker.spawn", "dropped");
  EXPECT_TRUE(F.snapshot().empty());
  EXPECT_EQ(F.json("any"), "{\"flightEvents\": []}\n");
  // Trace IDs are NOT compiled out: protocol frames carry them even
  // when the local build records nothing.
  EXPECT_NE(mintTraceId(), 0u);
}

#endif // COBALT_TELEMETRY

TEST(RemarkTest, RendersStably) {
  Remark R;
  R.K = Remark::Kind::RK_Passed;
  R.Pass = "cse";
  R.Proc = "main";
  R.Node = 5;
  R.Note = "chosen and applied";
  EXPECT_EQ(R.str(), "[passed] cse @ main:5: chosen and applied");

  Remark Whole;
  Whole.K = Remark::Kind::RK_RolledBack;
  Whole.Pass = "const_prop";
  Whole.Proc = "f";
  EXPECT_EQ(Whole.str(), "[rolledback] const_prop @ f");

  Remark Missed;
  Missed.Pass = "dead_assign_elim";
  Missed.Proc = "g";
  Missed.Node = 0;
  EXPECT_EQ(Missed.str(), "[missed] dead_assign_elim @ g:0");
}

} // namespace
