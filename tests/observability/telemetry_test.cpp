//===- telemetry_test.cpp - Metrics, traces, spans, remarks ---------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the telemetry substrate (DESIGN.md §9): the sharded
/// MetricsRegistry and its byte-stable JSON dump, the TraceRecorder's
/// Chrome trace output, RAII TraceSpan nesting and the ambient
/// TelemetryScope, and the Remark rendering the CLI's --remarks stream
/// relies on.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

using namespace cobalt;
using namespace cobalt::support;

namespace {

#if COBALT_TELEMETRY

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry M;
  EXPECT_EQ(M.counter("a"), 0u);
  M.add("a");
  M.add("a", 4);
  M.add("b", 2);
  EXPECT_EQ(M.counter("a"), 5u);
  EXPECT_EQ(M.counter("b"), 2u);
  auto All = M.counters();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All["a"], 5u);
  EXPECT_EQ(All["b"], 2u);
}

TEST(MetricsRegistryTest, Gauges) {
  MetricsRegistry M;
  M.gaugeSet("depth", 7);
  M.gaugeSet("depth", 3);
  EXPECT_EQ(M.gauge("depth"), 3);
  M.gaugeMax("high", 3);
  M.gaugeMax("high", 9);
  M.gaugeMax("high", 5);
  EXPECT_EQ(M.gauge("high"), 9);
}

TEST(MetricsRegistryTest, Histograms) {
  MetricsRegistry M;
  EXPECT_EQ(M.histogram("lat").Count, 0u);
  M.observe("lat", 2.0);
  M.observe("lat", 0.5);
  M.observe("lat", 4.0);
  HistogramStats H = M.histogram("lat");
  EXPECT_EQ(H.Count, 3u);
  EXPECT_DOUBLE_EQ(H.Sum, 6.5);
  EXPECT_DOUBLE_EQ(H.Min, 0.5);
  EXPECT_DOUBLE_EQ(H.Max, 4.0);
}

TEST(MetricsRegistryTest, JsonIsByteStableAndSorted) {
  // Two registries reaching the same state through different insertion
  // orders must serialize identically — the golden-file contract.
  MetricsRegistry A, B;
  A.add("zeta", 1);
  A.add("alpha", 2);
  A.gaugeSet("g", -3);
  A.observe("h", 1.5);
  B.observe("h", 1.5);
  B.gaugeSet("g", -3);
  B.add("alpha", 2);
  B.add("zeta", 1);
  EXPECT_EQ(A.json(), B.json());
  std::string J = A.json();
  EXPECT_LT(J.find("\"alpha\""), J.find("\"zeta\""));
  EXPECT_NE(J.find("\"g\": -3"), std::string::npos);
  EXPECT_NE(J.find("\"sum\": 1.500000"), std::string::npos);
}

TEST(MetricsRegistryTest, EmptyJsonShape) {
  MetricsRegistry M;
  std::string J = M.json();
  EXPECT_NE(J.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(J.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(J.find("\"histograms\": {}"), std::string::npos);
}

TEST(TraceRecorderTest, RecordsAndSerializes) {
  TraceRecorder R;
  TraceEvent E;
  E.Cat = "checker";
  E.Name = "obligation";
  E.Lane = 2;
  E.StartUs = 10;
  E.DurUs = 5;
  E.Args.emplace_back("verdict", "proven");
  R.record(E);
  EXPECT_EQ(R.eventCount(), 1u);

  std::string J = R.json();
  // Metadata rows name every lane up to the highest used one.
  EXPECT_NE(J.find("\"name\": \"driver\""), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"worker-1\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"cat\": \"checker\""), std::string::npos);
  EXPECT_NE(J.find("\"verdict\": \"proven\""), std::string::npos);
  EXPECT_NE(J.find("\"tid\": 2"), std::string::npos);
}

TEST(TraceRecorderTest, LaneIsThreadLocal) {
  EXPECT_EQ(TraceRecorder::currentLane(), 0u);
  std::thread T([] {
    EXPECT_EQ(TraceRecorder::currentLane(), 0u);
    TraceRecorder::setCurrentLane(3);
    EXPECT_EQ(TraceRecorder::currentLane(), 3u);
  });
  T.join();
  // The other thread's lane never leaked into this one.
  EXPECT_EQ(TraceRecorder::currentLane(), 0u);
}

TEST(TraceSpanTest, DisabledWithoutAmbientTelemetry) {
  ASSERT_EQ(Telemetry::active(), nullptr);
  TraceSpan Span("cat", "name");
  EXPECT_FALSE(Span.enabled());
  Span.arg("k", std::string("v")); // must be a no-op, not a crash
}

TEST(TraceSpanTest, RecordsUnderScope) {
  Telemetry T;
  {
    TelemetryScope Scope(&T);
    TraceSpan Outer("test", "outer");
    EXPECT_TRUE(Outer.enabled());
    Outer.arg("k", uint64_t(42));
    { TraceSpan Inner("test", "inner"); }
  }
  ASSERT_EQ(T.Trace.eventCount(), 2u);
  auto Events = T.Trace.snapshot();
  // Inner destructs first, so it is recorded first.
  EXPECT_STREQ(Events[0].Name, "inner");
  EXPECT_STREQ(Events[1].Name, "outer");
  ASSERT_EQ(Events[1].Args.size(), 1u);
  EXPECT_EQ(Events[1].Args[0].second, "42");
  // Nesting invariant the trace linter checks: inner ⊆ outer.
  EXPECT_GE(Events[0].StartUs, Events[1].StartUs);
  EXPECT_LE(Events[0].StartUs + Events[0].DurUs,
            Events[1].StartUs + Events[1].DurUs);
}

TEST(TraceSpanTest, TraceEnabledFalseSkipsSpansButNotMetrics) {
  Telemetry T;
  T.TraceEnabled = false;
  TelemetryScope Scope(&T);
  { TraceSpan Span("test", "span"); }
  metricAdd("still.counted");
  EXPECT_EQ(T.Trace.eventCount(), 0u);
  EXPECT_EQ(T.Metrics.counter("still.counted"), 1u);
}

TEST(TelemetryScopeTest, InstallsAndRestores) {
  EXPECT_EQ(Telemetry::active(), nullptr);
  metricAdd("dropped"); // no ambient sink: silently dropped
  Telemetry Outer, Inner;
  {
    TelemetryScope S1(&Outer);
    EXPECT_EQ(Telemetry::active(), &Outer);
    metricAdd("m");
    {
      TelemetryScope S2(&Inner);
      EXPECT_EQ(Telemetry::active(), &Inner);
      metricAdd("m");
    }
    EXPECT_EQ(Telemetry::active(), &Outer);
    {
      // nullptr scope is a no-op install: the outer session stays live.
      TelemetryScope S3(nullptr);
      EXPECT_EQ(Telemetry::active(), &Outer);
      metricAdd("m");
    }
  }
  EXPECT_EQ(Telemetry::active(), nullptr);
  EXPECT_EQ(Outer.Metrics.counter("m"), 2u);
  EXPECT_EQ(Inner.Metrics.counter("m"), 1u);
}

TEST(MetricsRegistryTest, ConcurrentAddsAreLossless) {
  MetricsRegistry M;
  constexpr unsigned Threads = 8, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&M] {
      for (unsigned I = 0; I < PerThread; ++I) {
        M.add("shared");
        M.observe("h", 1.0);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(M.counter("shared"), uint64_t(Threads) * PerThread);
  EXPECT_EQ(M.histogram("h").Count, uint64_t(Threads) * PerThread);
}

#else // !COBALT_TELEMETRY

TEST(TelemetryOffTest, NullSinkCompilesOut) {
  // The -DCOBALT_TELEMETRY=OFF contract: active() folds to nullptr and
  // the stub emitters produce the canonical empty documents.
  EXPECT_FALSE(telemetryCompiledIn());
  EXPECT_EQ(Telemetry::active(), nullptr);
  MetricsRegistry M;
  M.add("a");
  EXPECT_EQ(M.counter("a"), 0u);
  EXPECT_EQ(M.json(), "{\"counters\": {}, \"gauges\": {}, "
                      "\"histograms\": {}}\n");
  TraceRecorder R;
  EXPECT_EQ(R.json(), "{\"traceEvents\": []}\n");
}

#endif // COBALT_TELEMETRY

TEST(RemarkTest, RendersStably) {
  Remark R;
  R.K = Remark::Kind::RK_Passed;
  R.Pass = "cse";
  R.Proc = "main";
  R.Node = 5;
  R.Note = "chosen and applied";
  EXPECT_EQ(R.str(), "[passed] cse @ main:5: chosen and applied");

  Remark Whole;
  Whole.K = Remark::Kind::RK_RolledBack;
  Whole.Pass = "const_prop";
  Whole.Proc = "f";
  EXPECT_EQ(Whole.str(), "[rolledback] const_prop @ f");

  Remark Missed;
  Missed.Pass = "dead_assign_elim";
  Missed.Proc = "g";
  Missed.Node = 0;
  EXPECT_EQ(Missed.str(), "[missed] dead_assign_elim @ g:0");
}

} // namespace
