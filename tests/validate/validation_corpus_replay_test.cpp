//===- validation_corpus_replay_test.cpp - Replay the validation corpus ---===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every entry of tests/validate/corpus is a minimized miscompiled pair
/// a past `cobalt-fuzz --validate --minimize` campaign retained. Each
/// replays as its own registered test pinning the safety contract:
///
///   1. the differential interpreter still observes the recorded
///      divergence (the pair is a genuine miscompile), and
///   2. the validator still refuses to bless it — `caught` entries must
///      re-verdict Inequivalent, and no divergent entry may ever
///      re-verdict Equivalent (that would be a validator-blessed
///      miscompile, the headline failure).
///
//===----------------------------------------------------------------------===//

#include "validate/Adversary.h"
#include "validate/Validate.h"

#include "fuzz/Oracle.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace cobalt;
using namespace cobalt::validate;

namespace {

std::string corpusDir() { return COBALT_VALIDATE_CORPUS_DIR; }

ir::Program loadProgram(const std::string &RelPath) {
  std::ifstream In(corpusDir() + "/" + RelPath);
  EXPECT_TRUE(In) << "cannot open corpus file " << RelPath;
  std::ostringstream Text;
  Text << In.rdbuf();
  return ir::parseProgramOrDie(Text.str());
}

void replay(const ValidationCorpusEntry &E) {
  ir::Program Orig = loadProgram(E.Original);
  ir::Program Cand = loadProgram(E.Candidate);

  // Ground truth first: the stored pair must still be a miscompile.
  std::optional<fuzz::Divergence> Div = fuzz::diffPrograms(Orig, Cand);
  if (E.Class == "caught" || E.Class == "missed-unknown")
    ASSERT_TRUE(Div) << E.Rule
                     << ": minimized pair no longer diverges:\n"
                     << ir::toString(Cand);

  LabelRegistry Registry;
  checker::SoundnessChecker Checker(Registry, {});
  // Corpus pairs are minimized; keep unprovable obligations cheap.
  checker::ProverPolicy Policy;
  Policy.InitialTimeoutMs = 500;
  Policy.TimeoutMs = 2000;
  Policy.Retries = 1;
  Checker.setPolicy(Policy);

  ValidationReport R = validatePrograms(Orig, Cand, Checker);
  if (Div)
    EXPECT_NE(R.V, Verdict::V_Equivalent)
        << E.Rule << ": validator-blessed miscompile\n"
        << R.str();
  if (E.Class == "caught" || E.Class == "extended-catch")
    EXPECT_EQ(R.V, Verdict::V_Inequivalent)
        << E.Rule << " regressed from " << E.Class << ":\n"
        << R.str();
}

class ValidationReplayFixture : public ::testing::Test {
public:
  explicit ValidationReplayFixture(ValidationCorpusEntry E)
      : E(std::move(E)) {}
  void TestBody() override { replay(E); }

private:
  ValidationCorpusEntry E;
};

/// One registered test per manifest record, named after the pair stem so
/// `ctest -R ValidationReplay` pinpoints the regressing reproducer.
const bool Registered = [] {
  std::string Err;
  std::optional<std::vector<ValidationCorpusEntry>> Entries =
      loadValidationCorpusManifest(corpusDir(), Err);
  if (!Entries || Entries->empty()) {
    std::string Message =
        Entries ? std::string("validation corpus manifest is empty") : Err;
    ::testing::RegisterTest(
        "ValidationReplay", "ManifestLoads", nullptr, nullptr, __FILE__,
        __LINE__, [Message]() -> ::testing::Test * {
          class Fail : public ::testing::Test {
          public:
            explicit Fail(std::string M) : M(std::move(M)) {}
            void TestBody() override { FAIL() << M; }

          private:
            std::string M;
          };
          return new Fail(Message);
        });
    return false;
  }
  for (const ValidationCorpusEntry &E : *Entries) {
    std::string Name = E.Original.substr(0, E.Original.rfind(".orig.il"));
    ::testing::RegisterTest(
        "ValidationReplay", Name.c_str(), nullptr, nullptr, __FILE__,
        __LINE__,
        [E]() -> ::testing::Test * {
          return new ValidationReplayFixture(E);
        });
  }
  return true;
}();

TEST(ValidationCorpus, ManifestNamesOnlyDivergentClasses) {
  std::string Err;
  std::optional<std::vector<ValidationCorpusEntry>> Entries =
      loadValidationCorpusManifest(corpusDir(), Err);
  ASSERT_TRUE(Entries) << Err;
  EXPECT_GE(Entries->size(), 5u);
  for (const ValidationCorpusEntry &E : *Entries) {
    // A committed blessed pair would mean a released validator bug;
    // the corpus must never contain one.
    EXPECT_NE(E.Class, "BLESSED-MISCOMPILE") << E.Original;
    EXPECT_NE(E.Verdict, "Equivalent") << E.Original;
  }
}

} // namespace
