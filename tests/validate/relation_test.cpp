//===- relation_test.cpp - Relation synthesis units -----------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Units for the pieces the validator composes into a simulation proof:
/// cut-point selection (entry + loop headers, breaking every cycle),
/// candidate correspondence synthesis (including the one-cut-to-two-stops
/// alignment rotated loops need), exhaustive cut-to-cut path enumeration
/// with explicit caps, alpha-equivalence, and engine-mined value facts.
/// None of these touch Z3, so the suite is fast enough for every run.
///
//===----------------------------------------------------------------------===//

#include "validate/Alpha.h"
#include "validate/Facts.h"
#include "validate/Relation.h"

#include "ir/Parser.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::validate;

namespace {

ir::Program parse(const char *Text) { return ir::parseProgramOrDie(Text); }

const char *StraightLine = R"(
proc main(n) {
  decl s;
  s := n + 1;
  return s;
}
)";

// Top-test counting loop: test at 5, body 7-8, back edge 9 -> 5.
const char *TopTestLoop = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 10;
  s := s + i;
  i := i + 1;
  if 1 goto 5 else 5;
  return s;
}
)";

// The same loop rotated: guard test at 5, bottom test at 9/10. Same
// observable function as TopTestLoop.
const char *RotatedLoop = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 11;
  s := s + i;
  i := i + 1;
  t := i < n;
  if t goto 7 else 11;
  return s;
}
)";

TEST(ChooseCuts, StraightLineHasOnlyTheEntry) {
  ir::Program P = parse(StraightLine);
  ir::Cfg G(P.Procs[0]);
  EXPECT_EQ(chooseCuts(G), (std::vector<int>{0}));
  EXPECT_TRUE(cutsBreakAllCycles(G, {0}));
}

TEST(ChooseCuts, LoopHeaderIsCutAndBreaksTheCycle) {
  ir::Program P = parse(TopTestLoop);
  ir::Cfg G(P.Procs[0]);
  std::vector<int> Cuts = chooseCuts(G);
  ASSERT_GE(Cuts.size(), 2u);
  EXPECT_EQ(Cuts.front(), 0);
  EXPECT_TRUE(cutsBreakAllCycles(G, Cuts));
  // The entry alone does not break the cycle.
  EXPECT_FALSE(cutsBreakAllCycles(G, {0}));
}

TEST(Correspondence, IdenticalProceduresPairUp) {
  ir::Program A = parse(TopTestLoop);
  ir::Program B = parse(TopTestLoop);
  ir::Cfg GA(A.Procs[0]), GB(B.Procs[0]);
  Correspondence C;
  std::string Why;
  ASSERT_TRUE(synthesizeCorrespondence(GA, GB, C, &Why)) << Why;
  EXPECT_TRUE(std::count(C.Pairs.begin(), C.Pairs.end(),
                         std::make_pair(0, 0)));
  // Each original cut relates to the same-index candidate stop.
  for (int Cut : C.CutsA)
    EXPECT_TRUE(std::count(C.Pairs.begin(), C.Pairs.end(),
                           std::make_pair(Cut, Cut)));
}

TEST(Correspondence, RotatedLoopRelatesOneCutToTwoStops) {
  ir::Program A = parse(TopTestLoop);
  ir::Program B = parse(RotatedLoop);
  ir::Cfg GA(A.Procs[0]), GB(B.Procs[0]);
  Correspondence C;
  std::string Why;
  ASSERT_TRUE(synthesizeCorrespondence(GA, GB, C, &Why)) << Why;
  // The original loop-header cut must be related to more than one
  // candidate stop: the rotated body tests the condition at a different
  // program point, so a single aligned stop cannot cover both the guard
  // and the bottom test.
  int HeaderCut = C.CutsA.back();
  ASSERT_GT(HeaderCut, 0);
  size_t Stops = 0;
  for (const auto &[I, J] : C.Pairs)
    if (I == HeaderCut)
      ++Stops;
  EXPECT_GE(Stops, 2u) << "rotated loop needs two candidate stops";
}

TEST(Correspondence, UnbrokenCandidateCycleIsRefused) {
  // Original is straight-line (cuts = {entry}); the candidate has a
  // cycle no proposed stop can break, so synthesis must refuse rather
  // than emit an unsound (cycle-spanning, hence non-exhaustive)
  // enumeration request.
  ir::Program A = parse(StraightLine);
  ir::Program B = parse(TopTestLoop);
  ir::Cfg GA(A.Procs[0]), GB(B.Procs[0]);
  Correspondence C;
  std::string Why;
  EXPECT_FALSE(synthesizeCorrespondence(GA, GB, C, &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(EnumeratePaths, StraightLineYieldsOnePathToReturn) {
  ir::Program P = parse(StraightLine);
  ir::Cfg G(P.Procs[0]);
  std::vector<CutPath> Paths;
  ASSERT_TRUE(enumeratePaths(G, {0}, 0, 64, 48, Paths));
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_TRUE(Paths[0].EndsAtReturn);
  // Statements 0..1 execute; the return node ends the path unexecuted.
  EXPECT_EQ(Paths[0].Nodes, (std::vector<int>{0, 1}));
  EXPECT_EQ(Paths[0].End, 2);
}

TEST(EnumeratePaths, LoopPathsStopAtTheHeader) {
  ir::Program P = parse(TopTestLoop);
  ir::Cfg G(P.Procs[0]);
  std::vector<int> Cuts = chooseCuts(G);
  std::vector<CutPath> FromHeader;
  ASSERT_TRUE(
      enumeratePaths(G, Cuts, Cuts.back(), 64, 48, FromHeader));
  // From the header: one path around the body back to the header, one
  // path out to the return.
  ASSERT_EQ(FromHeader.size(), 2u);
  unsigned Returns = 0, BackEdges = 0;
  for (const CutPath &P : FromHeader) {
    if (P.EndsAtReturn)
      ++Returns;
    else if (P.End == Cuts.back())
      ++BackEdges;
  }
  EXPECT_EQ(Returns, 1u);
  EXPECT_EQ(BackEdges, 1u);
}

TEST(EnumeratePaths, CapsReportIncompleteness) {
  ir::Program P = parse(TopTestLoop);
  ir::Cfg G(P.Procs[0]);
  std::vector<CutPath> Paths;
  // MaxLen 1 cannot reach the next stop: the enumeration must say so
  // instead of silently returning a partial set.
  EXPECT_FALSE(enumeratePaths(G, {0}, 0, 64, 1, Paths));
  EXPECT_FALSE(enumeratePaths(G, {0}, 0, 0, 48, Paths));
}

TEST(Alpha, BijectiveRenamingIsAccepted) {
  ir::Program A = parse(RotatedLoop);
  ir::Program B = parse(R"(
proc main(n) {
  decl j;
  decl acc;
  decl c;
  j := 0;
  acc := 0;
  c := j < n;
  if c goto 7 else 11;
  acc := acc + j;
  j := j + 1;
  c := j < n;
  if c goto 7 else 11;
  return acc;
}
)");
  std::string Why;
  EXPECT_TRUE(alphaEquivalent(A.Procs[0], B.Procs[0], &Why)) << Why;
}

TEST(Alpha, NonBijectiveRenamingIsRefused) {
  // Both s and t map onto u: injectivity fails even though the programs
  // happen to behave identically here.
  ir::Program A = parse(R"(
proc main(n) {
  decl s;
  decl t;
  s := n;
  t := n;
  return t;
}
)");
  ir::Program B = parse(R"(
proc main(n) {
  decl u;
  decl u2;
  u := n;
  u := n;
  return u;
}
)");
  std::string Why;
  EXPECT_FALSE(alphaEquivalent(A.Procs[0], B.Procs[0], &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(Alpha, ConstantMismatchIsRefused) {
  ir::Program A = parse("proc main(n) { decl s; s := 1; return s; }");
  ir::Program B = parse("proc main(n) { decl s; s := 2; return s; }");
  EXPECT_FALSE(alphaEquivalent(A.Procs[0], B.Procs[0]));
}

TEST(Facts, ConstantAssignmentYieldsAConstPropFact) {
  ir::Program P = parse(R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + n;
  return y;
}
)");
  ir::Cfg G(P.Procs[0]);
  std::vector<std::vector<ValueFact>> Facts = mineFacts(G, 16);
  ASSERT_EQ(Facts.size(), static_cast<size_t>(G.size()));
  // At the use of x (node 3), the engine must know x = 3.
  bool Found = false;
  for (const ValueFact &F : Facts[3])
    if (F.Text.find("x") != std::string::npos &&
        F.Text.find("3") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "no x=3 fact at the use node";
}

TEST(Facts, AreDeterministicallyOrdered) {
  ir::Program P = parse(R"(
proc main(n) {
  decl x;
  decl y;
  decl z;
  x := 3;
  y := x;
  z := y + x;
  return z;
}
)");
  ir::Cfg G(P.Procs[0]);
  std::vector<std::vector<ValueFact>> A = mineFacts(G, 16);
  std::vector<std::vector<ValueFact>> B = mineFacts(G, 16);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    ASSERT_EQ(A[I].size(), B[I].size());
    for (size_t J = 0; J < A[I].size(); ++J)
      EXPECT_EQ(A[I][J].Text, B[I][J].Text);
  }
}

} // namespace
