//===- validate_test.cpp - Translation validation end-to-end --------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The validator's three verdicts, each earned the only way its
/// asymmetric evidence policy allows: Equivalent by proof (alpha for
/// renamed temporaries, Z3 cut-point simulation for rewritten and
/// loop-rotated candidates), Inequivalent by an interpreter-confirmed
/// witness, Unknown for everything the prover cannot align. Plus the
/// service-level contract: the report JSON is byte-identical at every
/// --jobs width, and identical concurrent requests are deduplicated.
///
//===----------------------------------------------------------------------===//

#include "validate/Validate.h"

#include "api/ReportJson.h"
#include "api/Service.h"
#include "ir/Parser.h"
#include "opts/Labels.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace cobalt;
using namespace cobalt::validate;

namespace {

ir::Program parse(const char *Text) { return ir::parseProgramOrDie(Text); }

/// One checker per test: the validate obligations need no registered
/// labels (fact mining brings its own registry), but the registry must
/// outlive the checker.
class ValidateTest : public ::testing::Test {
protected:
  ValidationReport validate(const char *Orig, const char *Cand,
                            ValidationOptions Options = {}) {
    checker::SoundnessChecker Checker(Registry, {});
    return validatePrograms(parse(Orig), parse(Cand), Checker, Options);
  }

  LabelRegistry Registry;
};

const char *SumLoop = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 11;
  s := s + i;
  i := i + 1;
  t := i < n;
  if t goto 7 else 11;
  return s;
}
)";

TEST_F(ValidateTest, RenamedTemporariesAreAlphaEquivalent) {
  const char *Renamed = R"(
proc main(n) {
  decl j;
  decl acc;
  decl c;
  j := 0;
  acc := 0;
  c := j < n;
  if c goto 7 else 11;
  acc := acc + j;
  j := j + 1;
  c := j < n;
  if c goto 7 else 11;
  return acc;
}
)";
  ValidationReport R = validate(SumLoop, Renamed);
  EXPECT_EQ(R.V, Verdict::V_Equivalent) << R.str();
  EXPECT_EQ(R.Method, "proof");
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].Method, "alpha");
  EXPECT_EQ(R.Procs[0].Obligations, 0u) << "alpha must not invoke Z3";
}

TEST_F(ValidateTest, ConstantPropagatedCandidateIsProven) {
  const char *Orig = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + n;
  return y;
}
)";
  const char *Propagated = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := 3 + n;
  return y;
}
)";
  ValidationReport R = validate(Orig, Propagated);
  EXPECT_EQ(R.V, Verdict::V_Equivalent) << R.str();
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].Method, "simulation");
  EXPECT_GT(R.Procs[0].Obligations, 0u);
  EXPECT_EQ(R.Procs[0].Proven, R.Procs[0].Obligations);
}

TEST_F(ValidateTest, RotatedLoopIsProvenBySimulation) {
  // Top-test loop vs the guard+bottom-test rotation an optimizer
  // produces: alignment needs one original cut related to two candidate
  // stops, the case positional matching alone cannot handle.
  const char *TopTest = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 10;
  s := s + i;
  i := i + 1;
  if 1 goto 5 else 5;
  return s;
}
)";
  ValidationReport R = validate(TopTest, SumLoop);
  EXPECT_EQ(R.V, Verdict::V_Equivalent) << R.str();
  ASSERT_EQ(R.Procs.size(), 1u);
  EXPECT_EQ(R.Procs[0].Method, "simulation");
}

TEST_F(ValidateTest, DivergentCandidateIsInequivalentWithWitness) {
  const char *WrongStep = R"(
proc main(n) {
  decl i;
  decl s;
  decl t;
  i := 0;
  s := 0;
  t := i < n;
  if t goto 7 else 11;
  s := s + i;
  i := i + 2;
  t := i < n;
  if t goto 7 else 11;
  return s;
}
)";
  ValidationReport R = validate(SumLoop, WrongStep);
  EXPECT_EQ(R.V, Verdict::V_Inequivalent) << R.str();
  EXPECT_EQ(R.Method, "probe");
  EXPECT_FALSE(R.Witness.empty())
      << "Inequivalent requires a concrete witness";
}

TEST_F(ValidateTest, IllFormedCandidateIsInequivalent) {
  // The candidate assigns an undeclared variable: well-formed enough to
  // parse, but every execution sticks. The probe observes it.
  const char *Stuck = R"(
proc main(n) {
  s := n;
  return s;
}
)";
  const char *Orig = R"(
proc main(n) {
  decl s;
  s := n;
  return s;
}
)";
  ValidationReport R = validate(Orig, Stuck);
  EXPECT_EQ(R.V, Verdict::V_Inequivalent) << R.str();
}

TEST_F(ValidateTest, UnalignableCandidateIsUnknownNeverEquivalent) {
  // The candidate agrees with the original on every probe input but
  // introduces a loop the correspondence cannot break: the only safe
  // verdict is Unknown.
  const char *Orig = R"(
proc main(n) {
  decl s;
  s := n;
  return s;
}
)";
  const char *Loopy = R"(
proc main(n) {
  decl j;
  decl t;
  j := 0;
  t := j < 3;
  if t goto 5 else 8;
  j := j + 1;
  t := j < 3;
  if t goto 5 else 8;
  return n;
}
)";
  ValidationReport R = validate(Orig, Loopy);
  EXPECT_EQ(R.V, Verdict::V_Unknown) << R.str();
  EXPECT_FALSE(R.Detail.empty());
}

TEST_F(ValidateTest, ProcedureSetMismatchIsUnknown) {
  const char *Orig = "proc main(n) { return n; }";
  const char *Extra =
      "proc helper(n) { return n; }\nproc main(n) { return n; }";
  ValidationReport R = validate(Orig, Extra);
  EXPECT_EQ(R.V, Verdict::V_Unknown) << R.str();
}

TEST_F(ValidateTest, FactMiningOffStillNeverBlesses) {
  // Ablation: with mined facts disabled the constant-propagation pair
  // may degrade to Unknown, but must never flip to a wrong verdict.
  const char *Orig = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + n;
  return y;
}
)";
  const char *Wrong = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := 4 + n;
  return y;
}
)";
  ValidationOptions NoFacts;
  NoFacts.UseFacts = false;
  ValidationReport R = validate(Orig, Wrong, NoFacts);
  EXPECT_EQ(R.V, Verdict::V_Inequivalent) << R.str();
}

//===----------------------------------------------------------------------===//
// Service-level: determinism across --jobs and concurrent dedup.
//===----------------------------------------------------------------------===//

std::shared_ptr<api::CobaltService> makeService(unsigned Jobs) {
  api::CobaltConfig Config;
  Config.Jobs = Jobs;
  api::CobaltService::Builder B;
  B.config(Config);
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  return B.build();
}

const char *JsonOrig = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + n;
  return y;
}
)";
const char *JsonCand = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := 3 + n;
  return y;
}
)";

std::string validationJsonAtWidth(unsigned Jobs) {
  std::shared_ptr<api::CobaltService> Svc = makeService(Jobs);
  api::ValidateRequest Req;
  Req.Original = ir::parseProgramOrDie(JsonOrig);
  Req.Candidate = ir::parseProgramOrDie(JsonCand);
  Req.Jobs = Jobs;
  api::ValidateResponse Resp = Svc->validate(std::move(Req));
  EXPECT_TRUE(Resp.ok()) << Resp.Err.str();
  std::string Out;
  api::emitValidationJson(Out, Resp.Report);
  return Out;
}

TEST(ValidateService, ReportJsonIsByteIdenticalAcrossJobsWidths) {
  std::string J1 = validationJsonAtWidth(1);
  std::string J4 = validationJsonAtWidth(4);
  EXPECT_EQ(J1, J4);
  EXPECT_NE(J1.find("\"verdict\": \"Equivalent\""), std::string::npos)
      << J1;
}

TEST(ValidateService, IdenticalConcurrentRequestsAreDeduplicated) {
  std::shared_ptr<api::CobaltService> Svc = makeService(2);
  constexpr int N = 4;
  std::vector<std::string> Reports(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      api::ValidateRequest Req;
      Req.Original = ir::parseProgramOrDie(JsonOrig);
      Req.Candidate = ir::parseProgramOrDie(JsonCand);
      api::ValidateResponse Resp = Svc->validate(std::move(Req));
      ASSERT_TRUE(Resp.ok()) << Resp.Err.str();
      api::emitValidationJson(Reports[I], Resp.Report);
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 1; I < N; ++I)
    EXPECT_EQ(Reports[0], Reports[I]);
  // N-1 requests were served from the leader's future.
  EXPECT_GE(Svc->cacheHits(), static_cast<unsigned>(N - 1));
}

} // namespace
