# Exit-code contract for containment degradation, driven through the real
# CLI. Runs `cobaltc check stdlib --isolate-workers` four ways and checks:
#
#   clean            -> 0  (all sound; isolation costs nothing in answers)
#   crash storm      -> 4  (containment degraded, distinct from infra's 3)
#   crash storm j1/j4-> identical verdict lines (timings normalized away)
#   --degraded=inprocess under the same storm -> 0 (every verdict recovered)
#
# Invoke with -DCOBALTC=<path-to-cobaltc>.

set(STORM_ENV "COBALT_FAULTS=worker.crash%15" "COBALT_FAULT_SEED=7")

function(run_cobaltc out_var rc_var)
  # ARGN: [ENV var=value...] -- cobaltc arguments
  cmake_parse_arguments(RUN "" "" "ENV;ARGS" ${ARGN})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${RUN_ENV} ${COBALTC} ${RUN_ARGS}
    OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR RESULT_VARIABLE RC)
  set(${out_var} "${OUT}" PARENT_SCOPE)
  set(${rc_var} "${RC}" PARENT_SCOPE)
endfunction()

# Verdict lines with wall-clock noise removed — the part that must be
# bit-identical across widths.
function(normalize text out_var)
  string(REGEX REPLACE "[0-9]+\\.[0-9]+ s" "<time> s" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

# 1. Clean isolated run: exit 0.
run_cobaltc(OUT RC ARGS check stdlib --isolate-workers --jobs 4)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "clean isolated run exited ${RC}, want 0:\n${OUT}")
endif()

# 2. Crash storm: the run completes, degrades, and exits 4.
run_cobaltc(J4 RC4 ENV ${STORM_ENV}
            ARGS check stdlib --isolate-workers --jobs 4)
if(NOT RC4 EQUAL 4)
  message(FATAL_ERROR "crash storm at --jobs 4 exited ${RC4}, want 4:\n${J4}")
endif()
if(NOT J4 MATCHES "containment degraded")
  message(FATAL_ERROR "exit 4 without the containment summary:\n${J4}")
endif()

# 3. Same storm at --jobs 1: same exit code, same verdicts.
run_cobaltc(J1 RC1 ENV ${STORM_ENV}
            ARGS check stdlib --isolate-workers --jobs 1)
if(NOT RC1 EQUAL 4)
  message(FATAL_ERROR "crash storm at --jobs 1 exited ${RC1}, want 4:\n${J1}")
endif()
normalize("${J1}" N1)
normalize("${J4}" N4)
if(NOT N1 STREQUAL N4)
  message(FATAL_ERROR "verdicts differ across --jobs widths\n"
          "--jobs 1:\n${N1}\n--jobs 4:\n${N4}")
endif()

# 4. The in-process escape hatch recovers every verdict: exit 0.
run_cobaltc(OUT RC ENV ${STORM_ENV}
            ARGS check stdlib --isolate-workers --degraded=inprocess --jobs 4)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
          "--degraded=inprocess under the storm exited ${RC}, want 0:\n${OUT}")
endif()

message(STATUS "degraded exit codes: 0 clean, 4 contained, 0 recovered")
