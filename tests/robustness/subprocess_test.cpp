//===- subprocess_test.cpp - Framed IPC and watchdog supervision ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-isolation primitive in isolation: frame round-trips, torn
/// frames surfacing as EOF (never partial data), and the supervised
/// readFrame's three distinct failure verdicts — crash (IO_Eof), hang
/// (IO_Timeout), and memory blow-up (IO_RssExceeded). Everything the
/// ProverWorkerPool's containment story rests on.
///
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

using namespace cobalt;
using support::IoStatus;
using support::Subprocess;

namespace {

/// A child that echoes every frame back until the parent closes its end.
int echoLoop(int Fd) {
  std::string Frame;
  while (Subprocess::readFrameBlocking(Fd, Frame) == IoStatus::IO_Ok)
    if (!Subprocess::writeFrame(Fd, Frame))
      return 3;
  return 0;
}

} // namespace

TEST(SubprocessTest, FrameRoundTrip) {
  Subprocess P;
  ASSERT_TRUE(P.spawn(echoLoop));
  ASSERT_TRUE(P.started());

  for (const std::string &Payload :
       {std::string("hello"), std::string(""),
        std::string("with\nnewlines\nand \0 nul", 23),
        std::string(1 << 20, 'x')}) {
    ASSERT_TRUE(P.writeFrame(Payload));
    std::string Back;
    ASSERT_EQ(P.readFrame(Back, /*DeadlineMs=*/5000), IoStatus::IO_Ok);
    EXPECT_EQ(Back, Payload);
  }
  P.kill();
}

TEST(SubprocessTest, ChildExitSurfacesAsEofWithStatus) {
  Subprocess P;
  ASSERT_TRUE(P.spawn([](int) { return 42; }));
  std::string Out;
  EXPECT_EQ(P.readFrame(Out, /*DeadlineMs=*/5000), IoStatus::IO_Eof);
  P.kill(); // reaps; the recorded status must be the child's own exit
  ASSERT_TRUE(WIFEXITED(P.exitStatus()));
  EXPECT_EQ(WEXITSTATUS(P.exitStatus()), 42);
}

TEST(SubprocessTest, TornFrameIsEofNeverPartialData) {
  Subprocess P;
  ASSERT_TRUE(P.spawn([](int Fd) {
    Subprocess::writeTornFrame(Fd, "this payload will be cut short");
    return 0;
  }));
  std::string Out = "sentinel";
  EXPECT_EQ(P.readFrame(Out, /*DeadlineMs=*/5000), IoStatus::IO_Eof);
  // The half-delivered payload must not leak out as data.
  EXPECT_EQ(Out.find("this payload"), std::string::npos) << Out;
  P.kill();
}

TEST(SubprocessTest, WatchdogKillsHangOnWallDeadline) {
  Subprocess P;
  ASSERT_TRUE(P.spawn([](int) {
    for (;;)
      std::this_thread::sleep_for(std::chrono::seconds(1));
    return 0;
  }));
  auto Start = std::chrono::steady_clock::now();
  std::string Out;
  EXPECT_EQ(P.readFrame(Out, /*DeadlineMs=*/200), IoStatus::IO_Timeout);
  auto Waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  EXPECT_GE(Waited, 200);
  EXPECT_LT(Waited, 5000) << "watchdog overslept";
  P.kill();
  EXPECT_FALSE(P.alive());
}

TEST(SubprocessTest, WatchdogKillsMemoryHogOnRssBudget) {
  Subprocess P;
  ASSERT_TRUE(P.spawn([](int Fd) {
    // Wait for the go-frame so the ballooning happens *inside* the
    // parent's supervised read (the budget is growth over the request,
    // not an absolute ceiling), then grow well past 16 MB and hang — a
    // missed rss check would fall through to the longer wall timeout.
    std::string Go;
    if (Subprocess::readFrameBlocking(Fd, Go) != IoStatus::IO_Ok)
      return 1;
    std::vector<std::unique_ptr<char[]>> Hog;
    constexpr size_t Chunk = 4u << 20;
    for (int I = 0; I < 32; ++I) {
      Hog.push_back(std::make_unique<char[]>(Chunk));
      std::memset(Hog.back().get(), 0x5a, Chunk);
    }
    for (;;)
      std::this_thread::sleep_for(std::chrono::seconds(1));
    return 0;
  }));
  ASSERT_TRUE(P.writeFrame("go"));
  std::string Out;
  IoStatus St =
      P.readFrame(Out, /*DeadlineMs=*/30000, /*RssLimitBytes=*/16l << 20);
  EXPECT_EQ(St, IoStatus::IO_RssExceeded);
  P.kill();
}

TEST(SubprocessTest, WriteToDeadChildFailsWithoutSignal) {
  Subprocess P;
  ASSERT_TRUE(P.spawn([](int) { return 0; }));
  P.kill();
  // MSG_NOSIGNAL: EPIPE comes back as `false`, not as a SIGPIPE that
  // would kill this test process.
  EXPECT_FALSE(P.writeFrame("anyone home?"));
}

TEST(SubprocessTest, KillIsIdempotentAndSafeUnstarted) {
  Subprocess Unstarted;
  Unstarted.kill();
  Unstarted.kill();
  EXPECT_FALSE(Unstarted.started());
  EXPECT_FALSE(Unstarted.alive());

  Subprocess P;
  ASSERT_TRUE(P.spawn(echoLoop));
  P.kill();
  P.kill();
  EXPECT_FALSE(P.alive());
}

TEST(SubprocessTest, IoStatusNamesAreStable) {
  EXPECT_STREQ(support::ioStatusName(IoStatus::IO_Ok), "ok");
  EXPECT_STREQ(support::ioStatusName(IoStatus::IO_Eof), "eof");
  EXPECT_STREQ(support::ioStatusName(IoStatus::IO_Timeout), "timeout");
}
