//===- containment_test.cpp - Worker crashes never take the run down -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end containment (DESIGN.md §12): obligations discharged in
/// forked prover workers under fault storms — crashes, hangs, memory
/// blow-ups, torn response frames. Every storm must (a) let the suite run
/// to completion, (b) degrade only the faulted obligations, to
/// unknown(EK_WorkerCrash), and (c) produce byte-identical reports at
/// every --jobs width. Also pins the DM_InProcess escape hatch and the
/// never-cache-a-quarantined-verdict rule.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

using namespace cobalt;
using namespace cobalt::checker;
using support::ScopedFaultPlan;
using support::ThreadPool;
namespace faults = cobalt::support::faults;
namespace fs = std::filesystem;

namespace {

const unsigned Widths[] = {1, 4};

LabelRegistry makeRegistry() {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  return Registry;
}

/// Everything except wall-clock timings, via the cache serialization.
std::string suiteFingerprint(const std::vector<CheckReport> &Reports) {
  std::ostringstream Out;
  for (const CheckReport &R : Reports)
    Out << serializeCheckReport(R) << "\n---\n";
  return Out.str();
}

struct RunConfig {
  unsigned Jobs = 1;
  std::string FaultPlan; ///< Empty = no injection.
  uint64_t Seed = 0;
  DegradedMode Degraded = DegradedMode::DM_Quarantine;
  unsigned WallMs = 0;  ///< 0 = checker default.
  unsigned RssMb = 0;   ///< 0 = unwatched.
  bool Isolate = true;  ///< WI_Subprocess unless cleared.
  std::string CacheDir; ///< Empty = no disk cache.
};

/// Runs a small fixed suite (one analysis, two optimizations — enough to
/// exercise the pool without minutes of fork/retry churn) and returns the
/// timing-free report fingerprint.
std::string runSuite(const RunConfig &RC) {
  LabelRegistry Registry = makeRegistry();
  SoundnessChecker SC(Registry, opts::allAnalyses());

  ProverPolicy P;
  P.Isolation = RC.Isolate ? WorkerIsolation::WI_Subprocess
                           : WorkerIsolation::WI_InProcess;
  P.Degraded = RC.Degraded;
  P.WorkerWallMs = RC.WallMs;
  P.WorkerRssMb = RC.RssMb;
  SC.setPolicy(P);
  if (!RC.CacheDir.empty())
    SC.setCacheDir(RC.CacheDir);

  ThreadPool Pool(RC.Jobs);
  SC.setThreadPool(&Pool);
  std::vector<Optimization> Opts = {opts::constProp(), opts::cse()};

  if (RC.FaultPlan.empty())
    return suiteFingerprint(SC.checkSuite(opts::allAnalyses(), Opts));
  ScopedFaultPlan Plan(RC.FaultPlan, RC.Seed);
  return suiteFingerprint(SC.checkSuite(opts::allAnalyses(), Opts));
}

unsigned countOccurrences(const std::string &Hay, const std::string &Needle) {
  unsigned N = 0;
  for (size_t At = Hay.find(Needle); At != std::string::npos;
       At = Hay.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Clean isolation: same answers, different address space.
//===----------------------------------------------------------------------===//

TEST(ContainmentTest, CleanIsolationMatchesInProcessVerdicts) {
  RunConfig InProc;
  InProc.Isolate = false;
  std::string Baseline = runSuite(InProc);
  ASSERT_NE(Baseline.find("const_prop"), std::string::npos);
  EXPECT_EQ(Baseline.find("worker_crash"), std::string::npos);

  for (unsigned Jobs : Widths) {
    RunConfig OutOfProc;
    OutOfProc.Jobs = Jobs;
    EXPECT_EQ(runSuite(OutOfProc), Baseline) << "jobs=" << Jobs;
  }
}

//===----------------------------------------------------------------------===//
// Fault storms: completion, classification, width-determinism.
//===----------------------------------------------------------------------===//

TEST(ContainmentTest, CrashStormQuarantinesDeterministically) {
  auto Storm = [](unsigned Jobs) {
    RunConfig RC;
    RC.Jobs = Jobs;
    RC.FaultPlan = std::string(faults::WorkerCrash) + "%20";
    RC.Seed = 9;
    return runSuite(RC);
  };
  // The run completes; faulted obligations degrade to EK_WorkerCrash.
  // Retries redraw the same per-obligation decision, so every faulted
  // obligation exhausts its worker budget — quarantine is deterministic.
  std::string Baseline = Storm(1);
  unsigned Quarantined = countOccurrences(Baseline, "worker_crash");
  ASSERT_GT(Quarantined, 0u) << "storm fired nothing:\n" << Baseline;
  EXPECT_NE(Baseline.find("worker died mid-request"), std::string::npos);

  for (unsigned Jobs : Widths)
    EXPECT_EQ(Storm(Jobs), Baseline) << "jobs=" << Jobs;
}

TEST(ContainmentTest, HungWorkersKilledByWallWatchdog) {
  auto Storm = [](unsigned Jobs) {
    RunConfig RC;
    RC.Jobs = Jobs;
    RC.FaultPlan = std::string(faults::WorkerHang) + "%6";
    RC.Seed = 3;
    RC.WallMs = 750; // headroom over any honest obligation, yet three
                     // hung attempts still cost only ~2 s
    return runSuite(RC);
  };
  std::string Baseline = Storm(1);
  ASSERT_GT(countOccurrences(Baseline, "worker_crash"), 0u)
      << "no hang fired:\n"
      << Baseline;
  EXPECT_NE(Baseline.find("watchdog: wall budget"), std::string::npos);

  for (unsigned Jobs : Widths)
    EXPECT_EQ(Storm(Jobs), Baseline) << "jobs=" << Jobs;
}

TEST(ContainmentTest, BallooningWorkersKilledByRssWatchdog) {
  auto Storm = [](unsigned Jobs) {
    RunConfig RC;
    RC.Jobs = Jobs;
    RC.FaultPlan = std::string(faults::WorkerOom) + "%6";
    RC.Seed = 4;
    RC.RssMb = 48;
    RC.WallMs = 30000; // the rss watchdog must win, not the wall one
    return runSuite(RC);
  };
  std::string Baseline = Storm(1);
  ASSERT_GT(countOccurrences(Baseline, "worker_crash"), 0u)
      << "no oom fired:\n"
      << Baseline;
  EXPECT_NE(Baseline.find("watchdog: rss budget"), std::string::npos);

  for (unsigned Jobs : Widths)
    EXPECT_EQ(Storm(Jobs), Baseline) << "jobs=" << Jobs;
}

TEST(ContainmentTest, TornResponseFramesClassifiedAsCrashes) {
  auto Storm = [](unsigned Jobs) {
    RunConfig RC;
    RC.Jobs = Jobs;
    RC.FaultPlan = std::string(faults::WorkerPartialWrite) + "%15";
    RC.Seed = 11;
    return runSuite(RC);
  };
  std::string Baseline = Storm(1);
  ASSERT_GT(countOccurrences(Baseline, "worker_crash"), 0u)
      << "no torn frame fired:\n"
      << Baseline;
  // The half-written ObligationResult must never surface as data.
  EXPECT_NE(Baseline.find("worker died mid-request"), std::string::npos);

  for (unsigned Jobs : Widths)
    EXPECT_EQ(Storm(Jobs), Baseline) << "jobs=" << Jobs;
}

//===----------------------------------------------------------------------===//
// Degradation policy.
//===----------------------------------------------------------------------===//

TEST(ContainmentTest, InProcessFallbackRecoversEveryVerdict) {
  RunConfig InProc;
  InProc.Isolate = false;
  std::string Clean = runSuite(InProc);

  for (unsigned Jobs : Widths) {
    RunConfig RC;
    RC.Jobs = Jobs;
    RC.FaultPlan = std::string(faults::WorkerCrash) + "%20";
    RC.Seed = 9;
    RC.Degraded = DegradedMode::DM_InProcess;
    // worker.* sites fire only inside worker children, so the in-process
    // rerun discharges the quarantined obligations for real: the storm
    // run must equal the clean baseline, crash marks and all.
    EXPECT_EQ(runSuite(RC), Clean) << "jobs=" << Jobs;
  }
}

TEST(ContainmentTest, QuarantinedVerdictsNeverCached) {
  fs::path Dir = fs::temp_directory_path() / "cobalt-containment-cache";
  fs::remove_all(Dir);

  RunConfig Storm;
  Storm.Jobs = 4;
  Storm.FaultPlan = std::string(faults::WorkerCrash) + "%20";
  Storm.Seed = 9;
  Storm.CacheDir = Dir.string();
  std::string Degraded = runSuite(Storm);
  ASSERT_GT(countOccurrences(Degraded, "worker_crash"), 0u);

  // Same cache, no faults: every quarantined definition must be
  // re-proven from scratch, not replayed from a poisoned entry.
  RunConfig Clean;
  Clean.Jobs = 4;
  Clean.CacheDir = Dir.string();
  std::string Healed = runSuite(Clean);
  EXPECT_EQ(Healed.find("worker_crash"), std::string::npos)
      << "a degraded verdict was served from the cache:\n"
      << Healed;

  RunConfig NoCache;
  NoCache.Jobs = 4;
  EXPECT_EQ(Healed, runSuite(NoCache));
  fs::remove_all(Dir);
}
