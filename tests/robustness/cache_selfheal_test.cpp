//===- cache_selfheal_test.cpp - The verdict cache heals, never lies -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-healing disk cache contract (DESIGN.md §12.4): every entry is
/// checksummed, anything that fails verification is quarantined aside and
/// reported as a miss — a corrupt cache can cost re-proving, never a
/// wrong verdict. Covers bit rot, truncation, garbage, the injected
/// torn-write fault, concurrent same-key writers, and version orphaning.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/PersistentCache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace cobalt;
using support::PersistentCache;
using support::ScopedFaultPlan;
namespace faults = cobalt::support::faults;
namespace fs = std::filesystem;

namespace {

/// Fresh cache directory per test.
class CacheSelfHealTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("cobalt-selfheal-" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()));
    fs::remove_all(Dir);
    ASSERT_TRUE(Cache.open(Dir.string(), "verdict", /*Version=*/3));
  }
  void TearDown() override { fs::remove_all(Dir); }

  /// The single entry file for \p Key (fails the test when the directory
  /// does not hold exactly one non-quarantined, non-temp entry).
  fs::path soleEntry() {
    fs::path Found;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
      std::string Name = E.path().filename().string();
      if (Name.find(".quarantined.") != std::string::npos ||
          Name.find(".tmp.") != std::string::npos)
        continue;
      EXPECT_TRUE(Found.empty()) << "second entry: " << Name;
      Found = E.path();
    }
    EXPECT_FALSE(Found.empty()) << "no entry file in " << Dir;
    return Found;
  }

  unsigned countSuffix(const std::string &Needle) {
    unsigned N = 0;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().filename().string().find(Needle) != std::string::npos)
        ++N;
    return N;
  }

  fs::path Dir;
  PersistentCache Cache;
};

} // namespace

TEST_F(CacheSelfHealTest, RoundTrip) {
  Cache.store(7, "verdict sound\n");
  EXPECT_EQ(Cache.load(7), std::optional<std::string>("verdict sound\n"));
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.stores(), 1u);
  EXPECT_EQ(Cache.corrupt(), 0u);
}

TEST_F(CacheSelfHealTest, FlippedBitQuarantinedNotTrusted) {
  Cache.store(7, "verdict sound for const_prop");
  fs::path Entry = soleEntry();

  // Flip one payload byte in place — header still parses, checksum no
  // longer matches.
  std::string Blob;
  {
    std::ifstream In(Entry, std::ios::binary);
    Blob.assign(std::istreambuf_iterator<char>(In), {});
  }
  Blob[Blob.size() - 3] ^= 0x40;
  std::ofstream(Entry, std::ios::binary | std::ios::trunc) << Blob;

  EXPECT_EQ(Cache.load(7), std::nullopt);
  EXPECT_EQ(Cache.corrupt(), 1u);
  EXPECT_FALSE(fs::exists(Entry)) << "corrupt entry left in place";
  EXPECT_EQ(countSuffix(".quarantined."), 1u);

  // A re-store heals the slot.
  Cache.store(7, "re-proven");
  EXPECT_EQ(Cache.load(7), std::optional<std::string>("re-proven"));
}

TEST_F(CacheSelfHealTest, TruncatedEntryQuarantined) {
  Cache.store(9, std::string(4096, 'v'));
  fs::path Entry = soleEntry();
  fs::resize_file(Entry, fs::file_size(Entry) / 2);

  EXPECT_EQ(Cache.load(9), std::nullopt);
  EXPECT_EQ(Cache.corrupt(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST_F(CacheSelfHealTest, GarbageEntryQuarantined) {
  Cache.store(11, "good");
  fs::path Entry = soleEntry();
  // Pre-checksum-era shape: looks like a serialized report, no header.
  std::ofstream(Entry, std::ios::binary | std::ios::trunc)
      << "report 2\nname x\nverdict sound\n";

  EXPECT_EQ(Cache.load(11), std::nullopt);
  EXPECT_EQ(Cache.corrupt(), 1u);
}

TEST_F(CacheSelfHealTest, InjectedTornWriteNeverServed) {
  // The cache.truncate_write fault models a torn write that reached the
  // final name; the checksum must catch it on every subsequent load.
  {
    ScopedFaultPlan Plan(faults::CacheTruncateWrite, /*Seed=*/1);
    Cache.store(13, std::string(1024, 'p'));
  }
  EXPECT_EQ(Cache.load(13), std::nullopt);
  EXPECT_EQ(Cache.corrupt(), 1u);
  // Healed by the next (un-faulted) store.
  Cache.store(13, "clean");
  EXPECT_EQ(Cache.load(13), std::optional<std::string>("clean"));
}

TEST_F(CacheSelfHealTest, ConcurrentSameKeyWritersLeaveOneValidEntry) {
  // Racing writers of one key must each use a unique temp: whatever
  // rename wins, the final file is one complete, verifiable value and
  // no temp debris survives.
  std::vector<std::thread> Writers;
  for (int I = 0; I < 8; ++I)
    Writers.emplace_back([this] {
      for (int J = 0; J < 25; ++J)
        Cache.store(21, std::string(2048, 'w'));
    });
  for (std::thread &T : Writers)
    T.join();

  EXPECT_EQ(Cache.load(21), std::optional<std::string>(std::string(2048, 'w')));
  EXPECT_EQ(Cache.corrupt(), 0u);
  EXPECT_EQ(countSuffix(".tmp."), 0u) << "temp files leaked";
}

TEST_F(CacheSelfHealTest, VersionBumpOrphansOldEntries) {
  // v3 readers never see (or quarantine) entries written under v2 — the
  // name carries the version, so a format migration is silent.
  PersistentCache Old;
  ASSERT_TRUE(Old.open(Dir.string(), "verdict", /*Version=*/2));
  Old.store(5, "stale-format value");

  EXPECT_EQ(Cache.load(5), std::nullopt);
  EXPECT_EQ(Cache.corrupt(), 0u);
  EXPECT_EQ(Old.load(5), std::optional<std::string>("stale-format value"));
}

TEST_F(CacheSelfHealTest, DisabledCacheIsInert) {
  PersistentCache Off;
  Off.store(1, "dropped");
  EXPECT_EQ(Off.load(1), std::nullopt);
  EXPECT_EQ(Off.corrupt(), 0u);
}
