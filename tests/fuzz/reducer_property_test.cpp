//===- reducer_property_test.cpp - Delta-debugging invariants -------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reducer's contract, checked as properties rather than examples:
///
///   * **Predicate preservation** — the reduced program still fails the
///     same way: the rule applies and the differential oracle still sees
///     a divergence (the reducer validates candidates internally; this
///     re-checks the *final* result from the outside).
///   * **Termination at a fixpoint** — a bounded number of rounds, and
///     the Fixpoint flag set when a whole round removed nothing.
///   * **Monotonicity** — never grows the program.
///   * **Idempotence on the corpus** — re-reducing an already-minimized
///     reproducer removes nothing further (the checked-in corpus really
///     is a fixpoint of the reducer, not a lucky snapshot).
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "ir/Generator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace cobalt;
using namespace cobalt::fuzz;

namespace {

FailurePredicate divergesUnder(const FuzzTarget &T) {
  return [&T](const ir::Program &Candidate) {
    ApplyOutcome Out = applyRule(T.Opt, T.Analyses, Candidate);
    if (Out.Applied == 0)
      return false;
    return diffPrograms(Candidate, Out.Prog).has_value();
  };
}

/// Harvests (target, program) pairs that actually diverge by sweeping
/// the campaign's own habitats, so the properties are exercised on the
/// exact distribution the fuzzer reduces in production.
struct FailingPair {
  const FuzzTarget *Target;
  ir::Program Prog;
};

std::vector<FailingPair> harvest(unsigned Want) {
  static const std::vector<FuzzTarget> Targets = buggySuiteTargets();
  std::vector<FailingPair> Out;
  for (uint64_t Seed = 0; Seed < 300 && Out.size() < Want; ++Seed) {
    ir::Program Prog = ir::generateProgram(deriveGenOptions(Seed), Seed);
    for (const FuzzTarget &T : Targets) {
      if (Out.size() >= Want)
        break;
      ApplyOutcome Applied = applyRule(T.Opt, T.Analyses, Prog);
      if (Applied.Applied == 0)
        continue;
      if (diffPrograms(Prog, Applied.Prog))
        Out.push_back({&T, Prog});
    }
  }
  return Out;
}

TEST(ReducerProperty, PreservesFailureAndTerminates) {
  std::vector<FailingPair> Pairs = harvest(/*Want=*/5);
  ASSERT_GE(Pairs.size(), 3u) << "habitat sweep found too few divergences";
  for (const FailingPair &P : Pairs) {
    FailurePredicate StillFails = divergesUnder(*P.Target);
    ReduceOptions Options;
    ReduceResult R = reduceProgram(P.Prog, StillFails, Options);

    EXPECT_TRUE(StillFails(R.Prog))
        << P.Target->Opt.Name << ": reduction lost the divergence\n"
        << ir::toString(R.Prog);
    EXPECT_FALSE(ir::validateProgram(R.Prog).has_value());
    EXPECT_LE(R.StatementsAfter, R.StatementsBefore);
    EXPECT_LE(R.Rounds, Options.MaxRounds);
    EXPECT_TRUE(R.Fixpoint)
        << P.Target->Opt.Name << " did not reach a fixpoint within "
        << Options.MaxRounds << " rounds";
    // The habitats' generated programs carry dozens of statements of
    // noise; reduction must strip the bulk of it.
    EXPECT_LT(R.StatementsAfter, R.StatementsBefore / 2)
        << P.Target->Opt.Name;
  }
}

TEST(ReducerProperty, IdempotentOnCheckedInCorpus) {
  std::string Err;
  std::optional<std::vector<CorpusEntry>> Entries =
      loadCorpusManifest(COBALT_FUZZ_CORPUS_DIR, Err);
  ASSERT_TRUE(Entries) << Err;

  std::vector<FuzzTarget> Targets = buggySuiteTargets();
  for (const CorpusEntry &E : *Entries) {
    std::ifstream In(std::string(COBALT_FUZZ_CORPUS_DIR) + "/" + E.File);
    ASSERT_TRUE(In) << E.File;
    std::ostringstream Text;
    Text << In.rdbuf();
    DiagnosticEngine Diags;
    std::optional<ir::Program> Prog = ir::parseProgram(Text.str(), Diags);
    ASSERT_TRUE(Prog) << Diags.str();

    const FuzzTarget *Target = nullptr;
    for (const FuzzTarget &T : Targets)
      if (T.Opt.Name == E.Rule)
        Target = &T;
    ASSERT_NE(Target, nullptr) << E.Rule;

    ReduceResult R = reduceProgram(*Prog, divergesUnder(*Target), {});
    EXPECT_TRUE(R.Fixpoint) << E.File;
    EXPECT_EQ(R.StatementsAfter, R.StatementsBefore)
        << E.File << " was not fully minimized:\n" << ir::toString(R.Prog);
  }
}

} // namespace
