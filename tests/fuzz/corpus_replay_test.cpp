//===- corpus_replay_test.cpp - Replay the checked-in fuzz corpus ---------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every entry of tests/fuzz/corpus is a minimized divergence some past
/// fuzzing campaign found. Replaying them one-by-one (each as its own
/// registered test, so `ctest -R CorpusReplay` names the exact
/// reproducer that regressed) pins three facts per entry:
///
///   1. the rule still *applies* to the reproducer,
///   2. the differential oracle still observes the recorded divergence
///      (same kind, same exposing input), and
///   3. the checker cross-check still classifies it the recorded way —
///      for the stock corpus, always caught-by-checker.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace cobalt;
using namespace cobalt::fuzz;

namespace {

std::string corpusDir() { return COBALT_FUZZ_CORPUS_DIR; }

/// Stock targets the manifest's rule names resolve against: the buggy
/// suite first (the corpus is made of its miscompiles), then the sound
/// suite so a future corpus can also pin checker-missed reproducers.
const std::vector<FuzzTarget> &stockTargets() {
  static const std::vector<FuzzTarget> Targets = [] {
    std::vector<FuzzTarget> Ts = buggySuiteTargets();
    for (FuzzTarget &T : soundSuiteTargets())
      Ts.push_back(std::move(T));
    return Ts;
  }();
  return Targets;
}

const FuzzTarget *findTarget(const std::string &Rule) {
  for (const FuzzTarget &T : stockTargets())
    if (T.Opt.Name == Rule)
      return &T;
  return nullptr;
}

void replay(const CorpusEntry &E) {
  std::ifstream In(corpusDir() + "/" + E.File);
  ASSERT_TRUE(In) << "cannot open corpus file " << E.File;
  std::ostringstream Text;
  Text << In.rdbuf();

  DiagnosticEngine Diags;
  std::optional<ir::Program> Prog = ir::parseProgram(Text.str(), Diags);
  ASSERT_TRUE(Prog) << Diags.str();

  // The corpus is minimized; the acceptance bar is <= 15 IL statements.
  EXPECT_LE(totalStmts(*Prog), 15u) << ir::toString(*Prog);

  const FuzzTarget *T = findTarget(E.Rule);
  ASSERT_NE(T, nullptr) << "manifest names unknown rule " << E.Rule;

  ApplyOutcome Out = applyRule(T->Opt, T->Analyses, *Prog);
  ASSERT_GT(Out.Applied, 0u)
      << E.Rule << " no longer applies to its reproducer";

  std::optional<Divergence> Div = diffPrograms(*Prog, Out.Prog);
  ASSERT_TRUE(Div) << E.Rule
                   << " no longer diverges on its minimized reproducer:\n"
                   << ir::toString(Out.Prog);
  EXPECT_EQ(std::string(Div->kindName()), E.Kind) << Div->str();
  EXPECT_EQ(Div->Input, E.Input) << Div->str();

  std::optional<checker::CheckReport::Verdict> V = verdictFromName(E.Verdict);
  ASSERT_TRUE(V) << "bad verdict name in manifest: " << E.Verdict;
  EXPECT_EQ(std::string(crossCheckName(crossCheck(*V, true))), E.Check);
}

class CorpusReplayFixture : public ::testing::Test {
public:
  explicit CorpusReplayFixture(CorpusEntry E) : E(std::move(E)) {}
  void TestBody() override { replay(E); }

private:
  CorpusEntry E;
};

/// Registers one test per manifest record before main() runs, so ctest
/// discovery sees them as individual named tests.
const bool Registered = [] {
  std::string Err;
  std::optional<std::vector<CorpusEntry>> Entries =
      loadCorpusManifest(corpusDir(), Err);
  if (!Entries || Entries->empty()) {
    std::string Message =
        Entries ? std::string("corpus manifest is empty") : Err;
    ::testing::RegisterTest(
        "CorpusReplay", "ManifestLoads", nullptr, nullptr, __FILE__,
        __LINE__, [Message]() -> ::testing::Test * {
          class Fail : public ::testing::Test {
          public:
            explicit Fail(std::string M) : M(std::move(M)) {}
            void TestBody() override { FAIL() << M; }

          private:
            std::string M;
          };
          return new Fail(Message);
        });
    return false;
  }
  for (const CorpusEntry &E : *Entries) {
    std::string Name = E.File.substr(0, E.File.rfind(".il"));
    ::testing::RegisterTest(
        "CorpusReplay", Name.c_str(), nullptr, nullptr, __FILE__, __LINE__,
        [E]() -> ::testing::Test * { return new CorpusReplayFixture(E); });
  }
  return true;
}();

TEST(CorpusManifest, CoversTheObservableBuggySuite) {
  std::string Err;
  std::optional<std::vector<CorpusEntry>> Entries =
      loadCorpusManifest(corpusDir(), Err);
  ASSERT_TRUE(Entries) << Err;
  EXPECT_GE(Entries->size(), 10u);
  // Every buggy rule whose miscompile is behaviorally observable has at
  // least one pinned reproducer.
  for (const FuzzTarget &T : buggySuiteTargets()) {
    if (!T.ExpectDivergence)
      continue;
    bool Found = false;
    for (const CorpusEntry &E : *Entries)
      Found = Found || E.Rule == T.Opt.Name;
    EXPECT_TRUE(Found) << "no corpus entry for observable buggy rule "
                       << T.Opt.Name;
  }
}

} // namespace
