# Runs the same fuzz campaign at two thread-pool widths and fails unless
# the JSON summaries are byte-identical. Invoked by the
# fuzz_smoke_deterministic ctest (see CMakeLists.txt in this directory).
foreach(JOBS 1 4)
  execute_process(
    COMMAND ${FUZZ_BIN} --suite=buggy --seed 5 --runs 24 --jobs ${JOBS}
    OUTPUT_FILE ${WORK_DIR}/determinism_j${JOBS}.json
    ERROR_VARIABLE IGNORED
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "cobalt-fuzz --jobs ${JOBS} exited with ${RC}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/determinism_j1.json ${WORK_DIR}/determinism_j4.json
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
          "fuzz summary differs between --jobs 1 and --jobs 4: the "
          "campaign is not deterministic across thread-pool widths")
endif()
