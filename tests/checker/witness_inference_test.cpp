//===- witness_inference_test.cpp - Paper §7 witness inference ------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The §7 future-work item, implemented and evaluated: for forward
/// optimizations whose enabler is an assignment, the strongest
/// postcondition of the enabling statement is guessed as the witness and
/// the ordinary obligations verify it. "Many of the other forward
/// optimizations that we have written also have this property" — here,
/// five of them do (and the guess is *identical* to the hand-written
/// witness in each case).
///
//===----------------------------------------------------------------------===//

#include "checker/WitnessInference.h"

#include "checker/Soundness.h"
#include "core/Builder.h"
#include "ir/Parser.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

class WitnessInferenceTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  /// Inference applies, reproduces the hand-written witness, and the
  /// optimization re-proves with the inferred one.
  void expectInferredAndSound(const Optimization &O) {
    auto Inferred = withInferredWitness(O);
    ASSERT_TRUE(Inferred.has_value()) << O.Name;
    EXPECT_EQ(Inferred->Pat.W->str(), O.Pat.W->str()) << O.Name;
    SoundnessChecker SC(Registry, opts::allAnalyses());
    CheckReport R = SC.checkOptimization(*Inferred);
    EXPECT_TRUE(R.Sound) << R.str();
  }

  LabelRegistry Registry;
};

TEST_F(WitnessInferenceTest, ConstProp) {
  expectInferredAndSound(opts::constProp());
}
TEST_F(WitnessInferenceTest, CopyProp) {
  expectInferredAndSound(opts::copyProp());
}
TEST_F(WitnessInferenceTest, Cse) { expectInferredAndSound(opts::cse()); }
TEST_F(WitnessInferenceTest, StoreForward) {
  expectInferredAndSound(opts::storeForward());
}
TEST_F(WitnessInferenceTest, LoadCse) {
  expectInferredAndSound(opts::loadCse());
}

TEST_F(WitnessInferenceTest, BackwardPatternsDoNotApply) {
  EXPECT_EQ(inferForwardWitness(opts::deadAssignElim().Pat), nullptr);
  EXPECT_EQ(inferForwardWitness(opts::preDuplicate().Pat), nullptr);
}

TEST_F(WitnessInferenceTest, DisjunctiveEnablersDoNotApply) {
  // branch_taken's enabler is the node-independent computes(...), not an
  // assignment — no strongest postcondition to take.
  EXPECT_EQ(inferForwardWitness(opts::branchTaken().Pat), nullptr);
}

TEST_F(WitnessInferenceTest, WildcardEnablersDoNotApply) {
  // An enabler `X := ...` has no expressible postcondition.
  Optimization O = opts::constProp();
  O.Pat.G.Psi1 = stmtIs("Y := ...");
  EXPECT_EQ(inferForwardWitness(O.Pat), nullptr);
}

TEST_F(WitnessInferenceTest, AWrongGuessOnlyFailsTheProof) {
  // Pair the const-prop guard with a rewrite it does not justify: the
  // inferred witness is still the enabler's postcondition, and the
  // obligations correctly reject the combination (footnote 1: witnesses
  // are verified, never trusted).
  Optimization O = opts::constProp();
  O.Name = "const_prop_bad_rewrite";
  O.Pat.To = ir::parseStmtPatternOrDie("X := Y + C");
  auto Inferred = withInferredWitness(O);
  ASSERT_TRUE(Inferred.has_value());
  SoundnessChecker SC(Registry, opts::allAnalyses());
  SC.setTimeoutMs(4000);
  EXPECT_FALSE(SC.checkOptimization(*Inferred).Sound);
}

} // namespace
