//===- encoder_test.cpp - Sanity of the Z3 semantics encoding -------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Encoder.h"

#include "checker/PatternEncoder.h"
#include "ir/Parser.h"
#include "opts/Labels.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::checker;
using namespace cobalt::ir;

namespace {

/// Checks that the hypotheses entail the goal.
bool entails(Encoder &Enc, const std::vector<z3::expr> &Hyps,
             const z3::expr &Goal) {
  z3::solver S(Enc.ctx());
  z3::params P(Enc.ctx());
  P.set("timeout", 10000u);
  S.set(P);
  for (const z3::expr &H : Hyps)
    S.add(H);
  S.add(!Goal);
  Enc.addBackgroundAxioms(S);
  return S.check() == z3::unsat;
}

TEST(EncoderTest, DatatypeConstructorsAreDistinguishable) {
  z3::context C;
  Encoder Enc(C);
  z3::expr V = Enc.freshVar("x");
  // SSkip is not an SDecl.
  EXPECT_TRUE(entails(Enc, {}, !Enc.IsSDecl(Enc.SSkip())));
  EXPECT_TRUE(entails(Enc, {}, Enc.IsSDecl(Enc.SDecl(V))));
  // Accessors invert constructors.
  EXPECT_TRUE(entails(Enc, {}, Enc.SDeclVar(Enc.SDecl(V)) == V));
}

TEST(EncoderTest, ConcreteVariablesAreDistinct) {
  z3::context C;
  Encoder Enc(C);
  z3::expr A = Enc.concreteVar("a");
  z3::expr B = Enc.concreteVar("b");
  EXPECT_TRUE(entails(Enc, {}, A != B));
  EXPECT_TRUE(entails(Enc, {}, Enc.concreteVar("a") == A));
}

TEST(EncoderTest, OperatorSemantics) {
  z3::context C;
  Encoder Enc(C);
  z3::expr Add = Enc.opConst("+", 2);
  EXPECT_TRUE(entails(
      Enc, {}, Enc.ApplyOp2(Add, C.int_val(2), C.int_val(3)) == 5));
  z3::expr Div = Enc.opConst("/", 2);
  EXPECT_TRUE(entails(Enc, {},
                      !Enc.DefinedOp2(Div, C.int_val(1), C.int_val(0))));
  z3::expr Lt = Enc.opConst("<", 2);
  EXPECT_TRUE(
      entails(Enc, {}, Enc.ApplyOp2(Lt, C.int_val(1), C.int_val(2)) == 1));
}

TEST(EncoderTest, EvalOfConstantExpr) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  MetaEnv Env;
  z3::expr E = Enc.buildExpr(parseExprPatternOrDie("7"), Env);
  ZEval R = Enc.evalExpr(S, E);
  EXPECT_TRUE(entails(Enc, {}, R.Defined));
  EXPECT_TRUE(entails(Enc, {}, R.Val == Enc.IntV(C.int_val(7))));
}

TEST(EncoderTest, EvalOfVariableReadsStore) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  MetaEnv Env;
  z3::expr E = Enc.buildExpr(parseExprPatternOrDie("v"), Env);
  ZEval R = Enc.evalExpr(S, E);
  z3::expr V = Enc.concreteVar("v");
  EXPECT_TRUE(entails(
      Enc, {z3::select(S.Scope, V)},
      R.Defined && R.Val == z3::select(S.Sto, z3::select(S.Env, V))));
  // Out-of-scope variables are undefined (stuck).
  EXPECT_TRUE(entails(Enc, {!z3::select(S.Scope, V)}, !R.Defined));
}

TEST(EncoderTest, SkipStepOnlyAdvancesIndex) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  ZStep Step = Enc.encodeStep(S, Enc.SSkip(), "p");
  EXPECT_TRUE(entails(Enc, {}, Step.Defined));
  EXPECT_TRUE(entails(Enc, {}, Step.Post.Ix == S.Ix + 1));
  EXPECT_TRUE(entails(Enc, {}, Step.Post.Sto == S.Sto));
  EXPECT_TRUE(entails(Enc, {}, Step.Post.Alloc == S.Alloc));
}

TEST(EncoderTest, AssignStepWritesTheLhsCell) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  MetaEnv Env;
  z3::expr St = Enc.buildStmt(parseStmtPatternOrDie("v := 3"), Env);
  ZStep Step = Enc.encodeStep(S, St, "p");
  z3::expr V = Enc.concreteVar("v");
  EXPECT_TRUE(entails(
      Enc, {z3::select(S.Scope, V), Step.Defined},
      z3::select(Step.Post.Sto, z3::select(S.Env, V)) ==
          Enc.IntV(C.int_val(3))));
}

TEST(EncoderTest, ReturnHasNoIntraproceduralStep) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  ZStep Step = Enc.encodeStep(S, Enc.SReturn(Enc.freshVar("r")), "p");
  EXPECT_TRUE(entails(Enc, {}, !Step.Defined));
}

TEST(EncoderTest, CallPreservesUnpointedCells) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  z3::expr Tgt = Enc.freshVar("t");
  z3::expr St = Enc.SCall(Tgt, Enc.freshProc("f"),
                          Enc.BConst(C.int_val(1)));
  ZStep Step = Enc.encodeStep(S, St, "p");
  std::vector<z3::expr> Hyps = {Enc.wf(S), Step.Defined};
  for (const z3::expr &E : Step.Constraints)
    Hyps.push_back(E);
  z3::expr L = C.int_const("someLoc");
  Hyps.push_back(L >= 0 && L < S.Alloc);
  Hyps.push_back(Enc.notPointedToLoc(S, L));
  Hyps.push_back(L != z3::select(S.Env, Tgt));
  EXPECT_TRUE(entails(Enc, Hyps,
                      z3::select(Step.Post.Sto, L) == z3::select(S.Sto, L)));
  // But preservation of an arbitrary cell is not provable (the contract
  // leaves pointed-to cells unconstrained). Model building under the
  // quantified contract may time out, so assert non-entailment rather
  // than satisfiability.
  z3::expr M = C.int_const("otherLoc");
  Hyps.pop_back();
  Hyps.pop_back();
  Hyps.pop_back();
  Hyps.push_back(M >= 0 && M < S.Alloc);
  EXPECT_FALSE(entails(Enc, Hyps,
                       z3::select(Step.Post.Sto, M) ==
                           z3::select(S.Sto, M)));
}

TEST(EncoderTest, CallEffectIsDeterministic) {
  // Two encodings of the same call from the same state yield the same
  // post-store (the functional contract).
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  z3::expr St = Enc.SCall(Enc.freshVar("t"), Enc.freshProc("f"),
                          Enc.BConst(C.int_val(1)));
  ZStep S1 = Enc.encodeStep(S, St, "p1");
  ZStep S2 = Enc.encodeStep(S, St, "p2");
  EXPECT_TRUE(entails(Enc, {}, S1.Post.Sto == S2.Post.Sto));
  EXPECT_TRUE(entails(Enc, {}, S1.Post.Alloc == S2.Post.Alloc));
}

TEST(EncoderTest, WfImpliesEnvInjectivity) {
  z3::context C;
  Encoder Enc(C);
  ZState S = Enc.freshState("s");
  z3::expr A = Enc.concreteVar("a");
  z3::expr B = Enc.concreteVar("b");
  EXPECT_TRUE(entails(
      Enc,
      {Enc.wf(S), z3::select(S.Scope, A), z3::select(S.Scope, B)},
      z3::select(S.Env, A) != z3::select(S.Env, B)));
}

TEST(PatternEncoderTest, StmtMatchConditionsAreStructural) {
  z3::context C;
  Encoder Enc(C);
  LabelRegistry Registry;
  std::map<std::string, const PureAnalysis *> NoAnalyses;
  PatternEncoder PE(Enc, Registry, NoAnalyses);

  MetaEnv Env;
  // A wildcard-lhs pattern must match deref stores of &X too.
  z3::expr StVar = Enc.SAssign(Enc.LVarC(Enc.freshVar("z")),
                               Enc.EAddr(Enc.concreteVar("x")));
  z3::expr StDeref = Enc.SAssign(Enc.LDerefC(Enc.freshVar("p")),
                                 Enc.EAddr(Enc.concreteVar("x")));
  Stmt Pattern = parseStmtPatternOrDie("_ := &X");
  MetaEnv E1, E2;
  z3::expr CondVar = PE.matchStmtCond(Pattern, StVar, E1);
  z3::expr CondDeref = PE.matchStmtCond(Pattern, StDeref, E2);
  // With X bound to the concrete x both match.
  // (E1/E2 bound X to the accessor; check the conditions hold.)
  EXPECT_TRUE(entails(Enc, {}, CondVar));
  EXPECT_TRUE(entails(Enc, {}, CondDeref));
}

TEST(PatternEncoderTest, ComputesHoldsExactlyForFoldedConstants) {
  z3::context C;
  Encoder Enc(C);
  LabelRegistry Registry;
  std::map<std::string, const PureAnalysis *> NoAnalyses;
  PatternEncoder PE(Enc, Registry, NoAnalyses);
  ZState S = Enc.freshState("s");

  MetaEnv Env;
  std::vector<z3::expr> Hyps;
  FormulaPtr F = fLabel("computes", {Term(parseExprPatternOrDie("2 + 3")),
                                     Term(parseExprPatternOrDie("C"))});
  z3::expr Cond = PE.formula(*F, Enc.SSkip(), S, Env, Hyps);
  auto It = Env.find("C");
  ASSERT_NE(It, Env.end());
  EXPECT_TRUE(entails(Enc, {Cond}, It->second == 5));
  EXPECT_TRUE(entails(Enc, {It->second == 5}, Cond));
}

} // namespace
