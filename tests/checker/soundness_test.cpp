//===- soundness_test.cpp - Every shipped pass is proven sound ------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E1: the paper reports automatically proving a dozen
/// optimizations and analyses sound (§5.1). Here every optimization in
/// the suite (16) plus the taint analysis must be proven, each obligation
/// discharged by Z3. These tests are the project's core guarantee: a
/// regression here means a pass became unprovable (or unsound).
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"

#include "opts/Buggy.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

class SoundnessTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  void expectSound(const Optimization &O) {
    SoundnessChecker SC(Registry, opts::allAnalyses());
    SC.setTimeoutMs(30000);
    CheckReport R = SC.checkOptimization(O);
    EXPECT_TRUE(R.Sound) << R.str();
    for (const ObligationResult &Ob : R.Obligations)
      EXPECT_TRUE(Ob.proven())
          << O.Name << "/" << Ob.Name << ": " << Ob.Counterexample;
  }

  LabelRegistry Registry;
};

TEST_F(SoundnessTest, TaintAnalysis) {
  SoundnessChecker SC(Registry);
  CheckReport R = SC.checkAnalysis(opts::taintAnalysis());
  EXPECT_TRUE(R.Sound) << R.str();
}

TEST_F(SoundnessTest, ConstProp) { expectSound(opts::constProp()); }
TEST_F(SoundnessTest, ConstPropFold) { expectSound(opts::constPropFold()); }
TEST_F(SoundnessTest, ConstPropPrecise) {
  expectSound(opts::constPropPrecise());
}
TEST_F(SoundnessTest, CopyProp) { expectSound(opts::copyProp()); }
TEST_F(SoundnessTest, ConstFoldAdd) { expectSound(opts::constFoldAdd()); }
TEST_F(SoundnessTest, ConstFoldMul) { expectSound(opts::constFoldMul()); }
TEST_F(SoundnessTest, SimplifyAddZero) {
  expectSound(opts::simplifyAddZero());
}
TEST_F(SoundnessTest, SimplifyMulOne) {
  expectSound(opts::simplifyMulOne());
}
TEST_F(SoundnessTest, SimplifyMulZero) {
  expectSound(opts::simplifyMulZero());
}
TEST_F(SoundnessTest, SimplifySubSelf) {
  expectSound(opts::simplifySubSelf());
}
TEST_F(SoundnessTest, Cse) { expectSound(opts::cse()); }
TEST_F(SoundnessTest, StoreForward) { expectSound(opts::storeForward()); }
TEST_F(SoundnessTest, LoadCse) { expectSound(opts::loadCse()); }
TEST_F(SoundnessTest, BranchFold) { expectSound(opts::branchFold()); }
TEST_F(SoundnessTest, BranchTaken) { expectSound(opts::branchTaken()); }
TEST_F(SoundnessTest, BranchNotTaken) {
  expectSound(opts::branchNotTaken());
}
TEST_F(SoundnessTest, DeadAssignElim) {
  expectSound(opts::deadAssignElim());
}
TEST_F(SoundnessTest, SelfAssignRemoval) {
  expectSound(opts::selfAssignRemoval());
}
TEST_F(SoundnessTest, RedundantBranchElim) {
  expectSound(opts::redundantBranchElim());
}
TEST_F(SoundnessTest, PreDuplicate) { expectSound(opts::preDuplicate()); }

TEST_F(SoundnessTest, AnalysisDependenciesAreReported) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport R = SC.checkOptimization(opts::constPropPrecise());
  ASSERT_EQ(R.AssumedAnalyses.size(), 1u);
  EXPECT_EQ(R.AssumedAnalyses[0], "taint_analysis");

  CheckReport R2 = SC.checkOptimization(opts::constProp());
  EXPECT_TRUE(R2.AssumedAnalyses.empty());
}

TEST_F(SoundnessTest, ObligationCountsMatchDirection) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  // Forward: F1/F2 split over 7 statement kinds + F3.
  CheckReport F = SC.checkOptimization(opts::constProp());
  EXPECT_EQ(F.Obligations.size(), 15u);
  // Backward non-insertion: B1 + B2/B3 split + B4 + B5.
  CheckReport B = SC.checkOptimization(opts::deadAssignElim());
  EXPECT_EQ(B.Obligations.size(), 17u);
  // Backward insertion: B4 replaced by I1/I2 (split).
  CheckReport I = SC.checkOptimization(opts::preDuplicate());
  EXPECT_EQ(I.Obligations.size(), 30u);
}

TEST_F(SoundnessTest, ReportStringMentionsVerdict) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport R = SC.checkOptimization(opts::constProp());
  EXPECT_NE(R.str().find("SOUND"), std::string::npos);
  EXPECT_NE(R.str().find("F3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Prover resilience: timeouts and unknowns are degradation (Unproven),
// never confused with a genuine counterexample (Unsound), and never a
// crash. Faults are injected via support/FaultInjection.h.
//===----------------------------------------------------------------------===//

TEST_F(SoundnessTest, ForcedTimeoutYieldsUnprovenNotUnsound) {
  support::ScopedFaultPlan Plan(support::faults::CheckerForceTimeout);
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport R = SC.checkOptimization(opts::constProp());

  EXPECT_FALSE(R.Sound);
  EXPECT_EQ(R.V, CheckReport::Verdict::V_Unproven);
  EXPECT_FALSE(R.unsound());
  EXPECT_TRUE(R.degraded());
  EXPECT_EQ(R.Degradation, support::ErrorKind::EK_ProverTimeout);
  EXPECT_NE(R.str().find("NOT PROVEN"), std::string::npos) << R.str();

  for (const ObligationResult &Ob : R.Obligations) {
    // A timeout is not a counterexample: no obligation may claim the
    // definition is wrong, and no counterexample text may be attached.
    EXPECT_NE(Ob.St, ObligationResult::Status::OS_Failed) << Ob.Name;
    ASSERT_TRUE(Ob.unknown()) << Ob.Name;
    EXPECT_EQ(Ob.Err.Kind, support::ErrorKind::EK_ProverTimeout) << Ob.Name;
    EXPECT_TRUE(Ob.Counterexample.empty()) << Ob.Counterexample;
    EXPECT_FALSE(Ob.Err.Message.empty()) << Ob.Name;
    // Every configured attempt was made before giving up.
    EXPECT_EQ(Ob.Attempts, SC.policy().Retries + 1) << Ob.Name;
  }
}

TEST_F(SoundnessTest, RetryEscalationRecoversFromTransientTimeout) {
  // Each obligation's first solver attempt faults (@N ordinals are
  // per-obligation-job, not arrival-ordered, so the plan is independent
  // of scheduling); the escalating retry must recover on every one and
  // still prove the optimization sound.
  support::ScopedFaultPlan Plan(
      std::string(support::faults::CheckerForceTimeout) + "@1");
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport R = SC.checkOptimization(opts::constProp());

  EXPECT_TRUE(R.Sound) << R.str();
  for (const ObligationResult &Ob : R.Obligations) {
    EXPECT_TRUE(Ob.proven()) << Ob.Name;
    // First attempt timed out (injected), second succeeded.
    EXPECT_EQ(Ob.Attempts, 2u) << Ob.Name;
  }
}

TEST_F(SoundnessTest, UnknownIsDistinctFromCounterexample) {
  // The two non-proven outcomes must be distinguishable by callers: a
  // prover unknown carries a degradation kind and no counterexample ...
  {
    support::ScopedFaultPlan Plan(support::faults::CheckerForceUnknown);
    SoundnessChecker SC(Registry, opts::allAnalyses());
    CheckReport R = SC.checkOptimization(opts::constProp());
    EXPECT_EQ(R.V, CheckReport::Verdict::V_Unproven);
    EXPECT_EQ(R.Degradation, support::ErrorKind::EK_ProverUnknown);
    for (const ObligationResult &Ob : R.Obligations) {
      ASSERT_TRUE(Ob.unknown()) << Ob.Name;
      EXPECT_TRUE(Ob.Counterexample.empty());
    }
  }
  // ... while a genuine unsoundness carries a counterexample model and
  // no degradation kind.
  {
    SoundnessChecker SC(Registry, opts::allAnalyses());
    CheckReport R = SC.checkOptimization(opts::constPropNoGuard().Opt);
    EXPECT_EQ(R.V, CheckReport::Verdict::V_Unsound);
    EXPECT_TRUE(R.unsound());
    EXPECT_FALSE(R.degraded());
    bool SawCounterexample = false;
    for (const ObligationResult &Ob : R.Obligations)
      if (Ob.St == ObligationResult::Status::OS_Failed) {
        EXPECT_FALSE(Ob.Counterexample.empty()) << Ob.Name;
        EXPECT_EQ(Ob.Err.Kind, support::ErrorKind::EK_None);
        SawCounterexample = true;
      }
    EXPECT_TRUE(SawCounterexample) << R.str();
  }
}

TEST_F(SoundnessTest, VerdictCacheServesRepeatChecks) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport First = SC.checkOptimization(opts::constProp());
  EXPECT_FALSE(First.CacheHit);
  ASSERT_TRUE(First.Sound);

  CheckReport Second = SC.checkOptimization(opts::constProp());
  EXPECT_TRUE(Second.CacheHit);
  EXPECT_EQ(Second.V, First.V);
  EXPECT_EQ(Second.Obligations.size(), First.Obligations.size());
  EXPECT_EQ(Second.TotalSeconds, 0.0);

  SC.clearCache();
  CheckReport Third = SC.checkOptimization(opts::constProp());
  EXPECT_FALSE(Third.CacheHit);
}

TEST_F(SoundnessTest, UnprovenVerdictsAreNeverCached) {
  // An Unproven verdict reflects transient resource limits; once the
  // fault clears, re-checking must reach the prover again and succeed.
  SoundnessChecker SC(Registry, opts::allAnalyses());
  {
    support::ScopedFaultPlan Plan(support::faults::CheckerForceTimeout);
    CheckReport R = SC.checkOptimization(opts::constProp());
    EXPECT_EQ(R.V, CheckReport::Verdict::V_Unproven);
  }
  CheckReport Retry = SC.checkOptimization(opts::constProp());
  EXPECT_FALSE(Retry.CacheHit);
  EXPECT_TRUE(Retry.Sound) << Retry.str();
}

TEST_F(SoundnessTest, ExhaustedBudgetReportsUnprovenWithoutCrashing) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  ProverPolicy Policy;
  Policy.BudgetMs = 1; // far less than 30 obligations need
  SC.setPolicy(Policy);
  CheckReport R = SC.checkOptimization(opts::preDuplicate());

  EXPECT_FALSE(R.Sound);
  EXPECT_EQ(R.V, CheckReport::Verdict::V_Unproven);
  // The first obligation runs under a 1 ms clamp and may classify as
  // timeout or generic unknown depending on how Z3 gives up; either way
  // the report must carry an infrastructure kind, not a counterexample.
  EXPECT_TRUE(support::isInfraError(R.Degradation)) << R.str();
  bool SawBudget = false;
  for (const ObligationResult &Ob : R.Obligations) {
    EXPECT_NE(Ob.St, ObligationResult::Status::OS_Failed) << Ob.Name;
    if (Ob.unknown() &&
        Ob.Err.Message.find("budget") != std::string::npos)
      SawBudget = true;
  }
  EXPECT_TRUE(SawBudget) << R.str();
}

} // namespace
