//===- soundness_test.cpp - Every shipped pass is proven sound ------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E1: the paper reports automatically proving a dozen
/// optimizations and analyses sound (§5.1). Here every optimization in
/// the suite (16) plus the taint analysis must be proven, each obligation
/// discharged by Z3. These tests are the project's core guarantee: a
/// regression here means a pass became unprovable (or unsound).
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"

#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

class SoundnessTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  void expectSound(const Optimization &O) {
    SoundnessChecker SC(Registry, opts::allAnalyses());
    SC.setTimeoutMs(30000);
    CheckReport R = SC.checkOptimization(O);
    EXPECT_TRUE(R.Sound) << R.str();
    for (const ObligationResult &Ob : R.Obligations)
      EXPECT_TRUE(Ob.proven())
          << O.Name << "/" << Ob.Name << ": " << Ob.Counterexample;
  }

  LabelRegistry Registry;
};

TEST_F(SoundnessTest, TaintAnalysis) {
  SoundnessChecker SC(Registry);
  CheckReport R = SC.checkAnalysis(opts::taintAnalysis());
  EXPECT_TRUE(R.Sound) << R.str();
}

TEST_F(SoundnessTest, ConstProp) { expectSound(opts::constProp()); }
TEST_F(SoundnessTest, ConstPropFold) { expectSound(opts::constPropFold()); }
TEST_F(SoundnessTest, ConstPropPrecise) {
  expectSound(opts::constPropPrecise());
}
TEST_F(SoundnessTest, CopyProp) { expectSound(opts::copyProp()); }
TEST_F(SoundnessTest, ConstFoldAdd) { expectSound(opts::constFoldAdd()); }
TEST_F(SoundnessTest, ConstFoldMul) { expectSound(opts::constFoldMul()); }
TEST_F(SoundnessTest, SimplifyAddZero) {
  expectSound(opts::simplifyAddZero());
}
TEST_F(SoundnessTest, SimplifyMulOne) {
  expectSound(opts::simplifyMulOne());
}
TEST_F(SoundnessTest, SimplifyMulZero) {
  expectSound(opts::simplifyMulZero());
}
TEST_F(SoundnessTest, SimplifySubSelf) {
  expectSound(opts::simplifySubSelf());
}
TEST_F(SoundnessTest, Cse) { expectSound(opts::cse()); }
TEST_F(SoundnessTest, StoreForward) { expectSound(opts::storeForward()); }
TEST_F(SoundnessTest, LoadCse) { expectSound(opts::loadCse()); }
TEST_F(SoundnessTest, BranchFold) { expectSound(opts::branchFold()); }
TEST_F(SoundnessTest, BranchTaken) { expectSound(opts::branchTaken()); }
TEST_F(SoundnessTest, BranchNotTaken) {
  expectSound(opts::branchNotTaken());
}
TEST_F(SoundnessTest, DeadAssignElim) {
  expectSound(opts::deadAssignElim());
}
TEST_F(SoundnessTest, SelfAssignRemoval) {
  expectSound(opts::selfAssignRemoval());
}
TEST_F(SoundnessTest, RedundantBranchElim) {
  expectSound(opts::redundantBranchElim());
}
TEST_F(SoundnessTest, PreDuplicate) { expectSound(opts::preDuplicate()); }

TEST_F(SoundnessTest, AnalysisDependenciesAreReported) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport R = SC.checkOptimization(opts::constPropPrecise());
  ASSERT_EQ(R.AssumedAnalyses.size(), 1u);
  EXPECT_EQ(R.AssumedAnalyses[0], "taint_analysis");

  CheckReport R2 = SC.checkOptimization(opts::constProp());
  EXPECT_TRUE(R2.AssumedAnalyses.empty());
}

TEST_F(SoundnessTest, ObligationCountsMatchDirection) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  // Forward: F1/F2 split over 7 statement kinds + F3.
  CheckReport F = SC.checkOptimization(opts::constProp());
  EXPECT_EQ(F.Obligations.size(), 15u);
  // Backward non-insertion: B1 + B2/B3 split + B4 + B5.
  CheckReport B = SC.checkOptimization(opts::deadAssignElim());
  EXPECT_EQ(B.Obligations.size(), 17u);
  // Backward insertion: B4 replaced by I1/I2 (split).
  CheckReport I = SC.checkOptimization(opts::preDuplicate());
  EXPECT_EQ(I.Obligations.size(), 30u);
}

TEST_F(SoundnessTest, ReportStringMentionsVerdict) {
  SoundnessChecker SC(Registry, opts::allAnalyses());
  CheckReport R = SC.checkOptimization(opts::constProp());
  EXPECT_NE(R.str().find("SOUND"), std::string::npos);
  EXPECT_NE(R.str().find("F3"), std::string::npos);
}

} // namespace
