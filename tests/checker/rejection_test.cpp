//===- rejection_test.cpp - Buggy variants are rejected (E2) --------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E2 ("debugging benefit", §6): every deliberately broken
/// optimization variant must fail its soundness check, and the failing
/// obligation must localize the bug. A rejection is a Failed (Z3 found a
/// counterexample state) or an Unknown (conservatively rejected) — both
/// keep the unsound pass out of the compiler; the TCB never grows.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"

#include "opts/Buggy.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::checker;

namespace {

class RejectionTest : public ::testing::TestWithParam<size_t> {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }
  LabelRegistry Registry;
};

TEST_P(RejectionTest, BuggyVariantIsRejectedAtTheRightObligation) {
  opts::BuggyCase Case = opts::allBuggyOptimizations()[GetParam()];
  for (const LabelDef &Def : Case.Opt.Labels)
    Registry.define(Def); // custom labels carried by the variant
  SoundnessChecker SC(Registry, opts::allAnalyses());
  // Rejections may surface as "unknown" when the counterexample needs a
  // model over quantified arrays; a short timeout keeps the suite fast
  // and a conservative checker treats unknown as rejection anyway.
  SC.setTimeoutMs(4000);
  CheckReport R = SC.checkOptimization(Case.Opt);

  EXPECT_FALSE(R.Sound) << Case.Opt.Name
                        << " should have been rejected: "
                        << Case.Explanation;

  bool ExpectedObligationFailed = false;
  for (const ObligationResult &Ob : R.Obligations)
    if (!Ob.proven() &&
        Ob.Name.rfind(Case.FailingObligation, 0) == 0)
      ExpectedObligationFailed = true;
  EXPECT_TRUE(ExpectedObligationFailed)
      << Case.Opt.Name << ": expected a failure at "
      << Case.FailingObligation << "; got " << R.str();
}

INSTANTIATE_TEST_SUITE_P(
    AllBuggyVariants, RejectionTest,
    ::testing::Range<size_t>(0, 10),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      return cobalt::opts::allBuggyOptimizations()[Info.param].Opt.Name;
    });

TEST(RejectionAnalysisTest, BuggyTaintAnalysisIsRejected) {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  opts::BuggyAnalysisCase Case = opts::buggyTaintAnalysis();
  for (const LabelDef &Def : Case.Analysis.Labels)
    Registry.define(Def);
  SoundnessChecker SC(Registry);
  SC.setTimeoutMs(4000);
  CheckReport R = SC.checkAnalysis(Case.Analysis);
  EXPECT_FALSE(R.Sound) << Case.Explanation;
  bool ExpectedObligationFailed = false;
  for (const ObligationResult &Ob : R.Obligations)
    if (!Ob.proven() && Ob.Name.rfind(Case.FailingObligation, 0) == 0)
      ExpectedObligationFailed = true;
  EXPECT_TRUE(ExpectedObligationFailed) << R.str();
}

TEST(RejectionDetailTest, CounterexampleContextIsProducedWhenSat) {
  // At least some rejections should come back as genuine sat results
  // with a model (the §7 "counterexample context"). Collect across the
  // suite and require one.
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  SoundnessChecker SC(Registry, opts::allAnalyses());
  SC.setTimeoutMs(4000);
  bool SawModel = false;
  for (const opts::BuggyCase &Case : opts::allBuggyOptimizations()) {
    for (const LabelDef &Def : Case.Opt.Labels)
      Registry.define(Def);
    CheckReport R = SC.checkOptimization(Case.Opt);
    for (const ObligationResult &Ob : R.Obligations)
      if (Ob.St == ObligationResult::Status::OS_Failed &&
          !Ob.Counterexample.empty())
        SawModel = true;
    if (SawModel)
      break;
  }
  EXPECT_TRUE(SawModel);
}

TEST(RejectionDetailTest, FixedVersionsOfEveryBuggyVariantAreSound) {
  // The pairing that makes E2 meaningful: each bug has a shipped, fixed
  // counterpart that *is* proven sound (checked exhaustively in
  // soundness_test; spot-check the two §6-style stars here).
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  SoundnessChecker SC(Registry, opts::allAnalyses());
  EXPECT_TRUE(SC.checkOptimization(opts::loadCse()).Sound);
  EXPECT_TRUE(SC.checkOptimization(opts::storeForward()).Sound);
}

} // namespace
