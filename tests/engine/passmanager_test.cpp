//===- passmanager_test.cpp - Pipelines and composition rules -------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/PassManager.h"

#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

TEST(PassManagerTest, AnalysisFeedsForwardOptimization) {
  PassManager PM;
  PM.addAnalysis(opts::taintAnalysis());
  PM.addOptimization(opts::constPropPrecise());

  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl b;
      decl p;
      decl c;
      a := 2;
      p := &b;
      *p := x;
      c := a;
      return c;
    }
  )");
  auto Reports = PM.run(Prog);
  ASSERT_EQ(Reports.size(), 2u);
  EXPECT_EQ(Reports[0].PassName, "taint_analysis");
  EXPECT_GT(Reports[0].DeltaSize, 0u);
  EXPECT_EQ(Reports[1].AppliedCount, 1u);
  EXPECT_NE(toString(Prog).find("c := 2"), std::string::npos);
}

TEST(PassManagerTest, PrePipelineEliminatesPartialRedundancy) {
  // The paper's §2.3 pipeline: duplicate, then CSE, then self-assignment
  // removal turns the partially redundant x := a + b into a fully
  // redundant one and removes it.
  PassManager PM;
  PM.addOptimization(opts::preDuplicate());
  PM.addOptimization(opts::cse());
  PM.addOptimization(opts::selfAssignRemoval());

  const char *Text = R"(
    proc main(n) {
      decl a;
      decl b;
      decl x;
      b := n;
      if n goto t else f;
    t:
      a := 1;
      x := a + b;
      if 1 goto join else join;
    f:
      skip;
    join:
      x := a + b;
      return x;
    }
  )";
  Program Prog = parseProgramOrDie(Text);
  auto Reports = PM.run(Prog);

  std::string Out = toString(Prog);
  // The else-leg skip became the computation; the join recomputation
  // reduced to x := x and then to skip.
  EXPECT_NE(Out.find("8: x := a + b"), std::string::npos) << Out;
  EXPECT_NE(Out.find("9: skip"), std::string::npos) << Out;

  // Semantics preserved on a few inputs.
  Program Original = parseProgramOrDie(Text);
  for (int64_t In : {0, 1, 5}) {
    Interpreter IO(Original), IT(Prog);
    RunResult RO = IO.run(In), RT = IT.run(In);
    ASSERT_TRUE(RO.returned());
    ASSERT_TRUE(RT.returned());
    EXPECT_EQ(RO.Result, RT.Result) << "input " << In << "\n" << Out;
  }
  (void)Reports;
}

TEST(PassManagerTest, FullPipelineRunsAllPassesAndPreservesSemantics) {
  PassManager PM;
  for (PureAnalysis &A : opts::allAnalyses())
    PM.addAnalysis(std::move(A));
  for (Optimization &O : opts::allOptimizations())
    PM.addOptimization(std::move(O));

  const char *Text = R"(
    proc helper(v) { decl r; r := v * 2; return r; }
    proc main(x) {
      decl a;
      decl b;
      decl c;
      decl d;
      decl g;
      a := 2 + 3;
      b := a;
      c := b + 1;
      d := b + 1;
      d := d;
      g := 0;
      if g goto t else f;
    t:
      c := helper(c);
    f:
      return c;
    }
  )";
  Program Prog = parseProgramOrDie(Text);
  auto Reports = PM.run(Prog);
  EXPECT_FALSE(Reports.empty());
  EXPECT_EQ(validateProgram(Prog), std::nullopt) << toString(Prog);

  Program Original = parseProgramOrDie(Text);
  for (int64_t In : {-7, 0, 3, 100}) {
    Interpreter IO(Original), IT(Prog);
    RunResult RO = IO.run(In), RT = IT.run(In);
    ASSERT_TRUE(RO.returned()) << RO.str();
    ASSERT_TRUE(RT.returned()) << RT.str();
    EXPECT_EQ(RO.Result, RT.Result)
        << "input " << In << "\n"
        << toString(Prog);
  }
}

TEST(PassManagerTest, RunToFixpointCascades) {
  // const_prop enables branch folding enables branch_taken; a fixpoint
  // of the pipeline applies the whole cascade.
  PassManager PM;
  PM.addOptimization(opts::constProp());
  PM.addOptimization(opts::branchFold());
  PM.addOptimization(opts::branchTaken());

  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl b;
      a := 1;
      b := a;
      if b goto t else f;
    t:
      x := 10;
    f:
      return x;
    }
  )");
  unsigned Rounds = PM.runToFixpoint(Prog);
  EXPECT_GE(Rounds, 1u);
  std::string Out = toString(Prog);
  EXPECT_NE(Out.find("if 1 goto 5 else 5"), std::string::npos) << Out;

  // Idempotent afterwards.
  Program Again = Prog;
  EXPECT_EQ(PM.runToFixpoint(Again), 0u);
  EXPECT_EQ(Prog, Again);
}

TEST(PassManagerTest, RunOneSelectsByName) {
  PassManager PM;
  PM.addOptimization(opts::constProp());
  PM.addOptimization(opts::deadAssignElim());

  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      a := 2;
      x := a;
      return x;
    }
  )");
  auto Reports = PM.runOne("const_prop", Prog);
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_EQ(Reports[0].PassName, "const_prop");
  EXPECT_NE(toString(Prog).find("x := 2"), std::string::npos);
}

TEST(PassManagerTest, LabelingExposedAfterRun) {
  PassManager PM;
  PM.addAnalysis(opts::taintAnalysis());
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl p;
      p := &a;
      return x;
    }
  )");
  PM.run(Prog);
  const Labeling *Labels = PM.labelingFor("main");
  ASSERT_NE(Labels, nullptr);
  GroundLabel NotTaintedP{"notTainted", {Binding::var("p")}};
  EXPECT_TRUE((*Labels)[3].count(NotTaintedP));
}

TEST(PassManagerTest, SharedLabelsAcrossPassesRegisterOnce) {
  PassManager PM;
  PM.addOptimization(opts::constProp());
  PM.addOptimization(opts::copyProp()); // shares mayDef/syntacticDef
  unsigned MayDefCount = 0;
  for (const LabelDef &Def : PM.registry().predicates())
    if (Def.Name == "mayDef")
      ++MayDefCount;
  EXPECT_EQ(MayDefCount, 1u);
}

} // namespace
