//===- rollback_test.cpp - Transactional passes under injected faults -----===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerance contract of the pass manager: a pass that throws
/// mid-rewrite, produces an ill-formed procedure, or miscompiles (caught
/// by the interpreter spot-check) is rolled back to a byte-identical
/// snapshot, recorded, and — after enough consecutive failures —
/// quarantined, while the rest of the pipeline keeps running. Faults are
/// injected deterministically via support/FaultInjection.h.
///
//===----------------------------------------------------------------------===//

#include "engine/PassManager.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Buggy.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;
using support::ErrorKind;
using support::ScopedFaultPlan;
namespace faults = support::faults;

namespace {

const char *SimplifiableText = R"(
  proc main(x) {
    decl a;
    decl b;
    a := x + 0;
    b := a * 1;
    return b;
  }
)";

TEST(RollbackTest, MidRewriteFaultRollsBackToExactSnapshot) {
  PassManager PM;
  Optimization AddZero = opts::simplifyAddZero();
  std::string PassName = AddZero.Name;
  PM.addOptimization(std::move(AddZero));

  Program Prog = parseProgramOrDie(SimplifiableText);
  Program Before = Prog;

  ScopedFaultPlan Plan(faults::EngineThrowMidRewrite);
  auto Reports = PM.run(Prog);

  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_TRUE(Reports[0].failed());
  EXPECT_EQ(Reports[0].Err.Kind, ErrorKind::EK_PassPanic);
  EXPECT_TRUE(Reports[0].RolledBack);
  EXPECT_EQ(Reports[0].AppliedCount, 0u);

  // The rollback restores the pre-pass AST exactly: structural equality
  // and byte-identical printed form.
  ASSERT_EQ(Prog.Procs.size(), Before.Procs.size());
  EXPECT_TRUE(Prog.Procs[0] == Before.Procs[0]);
  EXPECT_EQ(toString(Prog), toString(Before));

  EXPECT_TRUE(PM.lastRunDegraded());
  EXPECT_EQ(PM.failureCount(PassName), 1u);
  EXPECT_TRUE(PM.quarantined().empty()); // one failure < QuarantineAfter
}

TEST(RollbackTest, LaterPassesStillRunAfterRollback) {
  PassManager PM;
  PM.addOptimization(opts::simplifyAddZero());
  PM.addOptimization(opts::simplifyMulOne());

  Program Prog = parseProgramOrDie(SimplifiableText);

  // Only the first rewrite of the run (inside simplify_add_zero) faults;
  // the pipeline must still reach simplify_mul_one afterwards.
  ScopedFaultPlan Plan(std::string(faults::EngineThrowMidRewrite) + "@1");
  auto Reports = PM.run(Prog);

  ASSERT_EQ(Reports.size(), 2u);
  EXPECT_TRUE(Reports[0].failed());
  EXPECT_TRUE(Reports[0].RolledBack);
  EXPECT_FALSE(Reports[1].failed());
  EXPECT_EQ(Reports[1].AppliedCount, 1u);

  std::string Out = toString(Prog);
  EXPECT_EQ(Out.find("* 1"), std::string::npos) << Out;   // mul-one applied
  EXPECT_NE(Out.find("x + 0"), std::string::npos) << Out; // add-zero rolled back
  EXPECT_TRUE(PM.lastRunDegraded());
}

TEST(RollbackTest, SpotCheckRejectsMiscompilingPassAndRollsBack) {
  // constPropNoGuard propagates a constant across a redefinition; on the
  // program below it rewrites `b := a` to `b := 7` although a holds x by
  // then. No exception is thrown — the bug is caught by the post-pass
  // interpreter spot-check, and the procedure is rolled back instead of
  // shipping a miscompile.
  PassManager PM;
  opts::BuggyCase Buggy = opts::constPropNoGuard();
  PM.addOptimization(std::move(Buggy.Opt));

  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl b;
      a := 7;
      a := x;
      b := a;
      return b;
    }
  )");
  Program Before = Prog;

  auto Reports = PM.run(Prog);

  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_TRUE(Reports[0].failed());
  EXPECT_EQ(Reports[0].Err.Kind, ErrorKind::EK_RewriteConflict);
  EXPECT_TRUE(Reports[0].RolledBack);
  EXPECT_EQ(Reports[0].AppliedCount, 0u);
  EXPECT_NE(Reports[0].Err.Message.find("spot-check"), std::string::npos)
      << Reports[0].Err.Message;

  EXPECT_TRUE(Prog.Procs[0] == Before.Procs[0]);
  EXPECT_EQ(toString(Prog), toString(Before));
  EXPECT_TRUE(PM.lastRunDegraded());
}

TEST(RollbackTest, InterpreterFaultDuringSpotCheckTriggersRollback) {
  // The interpreter itself failing (forced stuck on the first post-pass
  // run) makes the rewritten program look non-returning where the
  // original returned — conservatively treated as a conflict and rolled
  // back. A sound pass is sacrificed, never soundness.
  PassManager PM;
  PM.addOptimization(opts::simplifyAddZero());

  Program Prog = parseProgramOrDie(SimplifiableText);
  Program Before = Prog;

  ScopedFaultPlan Plan(std::string(faults::InterpForceStuck) + "@1");
  auto Reports = PM.run(Prog);

  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_TRUE(Reports[0].failed());
  EXPECT_EQ(Reports[0].Err.Kind, ErrorKind::EK_RewriteConflict);
  EXPECT_TRUE(Reports[0].RolledBack);
  EXPECT_NE(Reports[0].Err.Message.find("stuck"), std::string::npos)
      << Reports[0].Err.Message;
  EXPECT_TRUE(Prog.Procs[0] == Before.Procs[0]);
}

TEST(RollbackTest, PassIsQuarantinedAfterConsecutiveFailures) {
  PassManager PM;
  TxPolicy Tx;
  Tx.QuarantineAfter = 2;
  PM.setTxPolicy(Tx);
  Optimization AddZero = opts::simplifyAddZero();
  std::string PassName = AddZero.Name;
  PM.addOptimization(std::move(AddZero));

  Program Prog = parseProgramOrDie(SimplifiableText);

  {
    ScopedFaultPlan Plan(faults::EngineThrowMidRewrite);
    support::FaultInjector &FI = support::FaultInjector::instance();

    // Two consecutive failures → quarantine threshold reached.
    EXPECT_TRUE(PM.run(Prog)[0].failed());
    EXPECT_TRUE(PM.run(Prog)[0].failed());
    EXPECT_EQ(PM.failureCount(PassName), 2u);
    ASSERT_EQ(PM.quarantined().size(), 1u);
    EXPECT_EQ(PM.quarantined()[0], PassName);

    // Third run: the pass is skipped entirely (the engine's injection
    // point is never even reached) but reported, and the run counts as
    // degraded.
    unsigned HitsBefore = FI.hits(faults::EngineThrowMidRewrite);
    auto Reports = PM.run(Prog);
    ASSERT_EQ(Reports.size(), 1u);
    EXPECT_TRUE(Reports[0].Quarantined);
    EXPECT_EQ(Reports[0].Err.Kind, ErrorKind::EK_Quarantined);
    EXPECT_EQ(FI.hits(faults::EngineThrowMidRewrite), HitsBefore);
    EXPECT_TRUE(PM.lastRunDegraded());
  }

  // Fault source fixed + quarantine lifted: the pass works again.
  PM.resetQuarantine();
  auto Reports = PM.run(Prog);
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_FALSE(Reports[0].failed());
  EXPECT_EQ(Reports[0].AppliedCount, 1u);
  EXPECT_FALSE(PM.lastRunDegraded());
}

TEST(RollbackTest, FixpointConvergesUnderPersistentFault) {
  // A rolled-back pass reports zero applications, so a persistently
  // faulting pass cannot keep runToFixpoint spinning until MaxRounds.
  PassManager PM;
  TxPolicy Tx;
  Tx.QuarantineAfter = 0; // never quarantine: the pass fails every round
  PM.setTxPolicy(Tx);
  PM.addOptimization(opts::simplifyAddZero());

  Program Prog = parseProgramOrDie(SimplifiableText);
  Program Before = Prog;

  ScopedFaultPlan Plan(faults::EngineThrowMidRewrite);
  unsigned ActiveRounds = PM.runToFixpoint(Prog);

  EXPECT_EQ(ActiveRounds, 0u);
  EXPECT_TRUE(PM.lastRunDegraded());
  EXPECT_EQ(toString(Prog), toString(Before));
}

TEST(RollbackTest, NonTransactionalModeStillContainsTheException) {
  // With Transactional off there is no snapshot to restore — the failure
  // is still caught and recorded (the pipeline never crashes), but the
  // procedure keeps whatever the pass left behind.
  PassManager PM;
  TxPolicy Tx;
  Tx.Transactional = false;
  PM.setTxPolicy(Tx);
  PM.addOptimization(opts::simplifyAddZero());

  Program Prog = parseProgramOrDie(SimplifiableText);
  Program Before = Prog;

  ScopedFaultPlan Plan(faults::EngineThrowMidRewrite);
  auto Reports = PM.run(Prog);

  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_TRUE(Reports[0].failed());
  EXPECT_FALSE(Reports[0].RolledBack);
  EXPECT_NE(toString(Prog), toString(Before)); // half-applied, by design
}

} // namespace
