//===- guard_semantics_test.cpp - Definition 1 oracle ("Figure 1") --------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E4: the engine's dataflow solution must coincide with the
/// path-quantified semantics of guards (Definition 1 / Figure 1). On
/// acyclic CFGs the oracle enumerates every path explicitly; the
/// framework is distributive, so agreement there extends to cyclic CFGs
/// (meet-over-paths = maximal fixed point).
///
//===----------------------------------------------------------------------===//

#include "core/Builder.h"
#include "engine/Dataflow.h"
#include "ir/Generator.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Labels.h"

#include <gtest/gtest.h>

#include <functional>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

/// Enumerates all paths of an acyclic CFG from the entry to \p Target
/// (forward) or from \p Target to any exit (backward), invoking \p Sink
/// with each node sequence (in execution order, Target exclusive).
void forEachPathTo(const Cfg &G, int Target, std::vector<int> &Prefix,
                   int At, const std::function<void(
                                const std::vector<int> &)> &Sink) {
  if (At == Target) {
    Sink(Prefix);
    return;
  }
  Prefix.push_back(At);
  for (int S : G.succs(At))
    forEachPathTo(G, Target, Prefix, S, Sink);
  Prefix.pop_back();
}

void forEachPathFrom(const Cfg &G, int From, std::vector<int> &Suffix,
                     const std::function<void(const std::vector<int> &)>
                         &Sink) {
  if (G.succs(From).empty()) {
    Sink(Suffix);
    return;
  }
  for (int S : G.succs(From)) {
    Suffix.push_back(S);
    forEachPathFrom(G, S, Suffix, Sink);
    Suffix.pop_back();
  }
}

/// Literal Definition 1: (ι, θ) ∈ [[ψ1 followed by ψ2]](p) iff on every
/// entry→ι path there is a ψ1 node followed by only-ψ2 nodes before ι.
/// The backward variant mirrors it on ι→exit paths.
bool oracleHolds(Direction Dir, const Guard &Gd, const Cfg &G, int Iota,
                 const Substitution &Theta, const LabelRegistry &Registry,
                 const Universe &Univ) {
  const Procedure &P = G.proc();
  auto Sat = [&](int Node, const FormulaPtr &F) {
    NodeContext Ctx{&P, Node, &Registry, nullptr, &Univ};
    auto R = evalFormula(*F, Ctx, Theta);
    return R.has_value() && *R;
  };

  bool AllPathsOk = true;
  auto CheckPath = [&](const std::vector<int> &Nodes) {
    if (!AllPathsOk)
      return;
    // Forward: Nodes = ι1..ιj in execution order; scan from the end for
    // the nearest ψ1 node with ψ2 holding after it.
    // Backward: Nodes = ιj..ι1 in execution order (after ι); the nearest
    // ψ1 node is scanned from the *front*, ψ2 must hold before it.
    bool Ok = false;
    if (Dir == Direction::D_Forward) {
      bool Psi2Suffix = true;
      for (int K = static_cast<int>(Nodes.size()) - 1; K >= 0; --K) {
        if (Psi2Suffix && Sat(Nodes[K], Gd.Psi1)) {
          Ok = true;
          break;
        }
        Psi2Suffix = Psi2Suffix && Sat(Nodes[K], Gd.Psi2);
        if (!Psi2Suffix)
          break;
      }
    } else {
      bool Psi2Prefix = true;
      for (size_t K = 0; K < Nodes.size(); ++K) {
        if (Psi2Prefix && Sat(Nodes[K], Gd.Psi1)) {
          Ok = true;
          break;
        }
        Psi2Prefix = Psi2Prefix && Sat(Nodes[K], Gd.Psi2);
        if (!Psi2Prefix)
          break;
      }
    }
    if (!Ok)
      AllPathsOk = false;
  };

  std::vector<int> Scratch;
  if (Dir == Direction::D_Forward) {
    if (!G.isReachable(Iota))
      return false; // engine's conservative choice for unreachable nodes
    forEachPathTo(G, Iota, Scratch, G.entry(), CheckPath);
  } else {
    forEachPathFrom(G, Iota, Scratch, CheckPath);
  }
  return AllPathsOk;
}

/// Compares the dataflow solution with the oracle for every node and
/// every candidate substitution.
void compareWithOracle(Direction Dir, const Guard &Gd, const Procedure &P,
                       const LabelRegistry &Registry) {
  Cfg G(P);
  Universe Univ = buildUniverse(P);
  GuardSolution Sol = solveGuard(Dir, Gd, G, Registry, nullptr);

  // Candidate substitutions: everything any node generates.
  std::set<Substitution> Candidates;
  for (int I = 0; I < G.size(); ++I) {
    NodeContext Ctx{&P, I, &Registry, nullptr, &Univ};
    for (Substitution &S : satisfyFormula(*Gd.Psi1, Ctx, {}))
      Candidates.insert(std::move(S));
  }

  for (int I = 0; I < G.size(); ++I) {
    // Backward guards on forward-unreachable nodes are outside the
    // engine's supported surface (it never transforms them); skip.
    if (!G.isReachable(I))
      continue;
    bool BackwardLive = !G.succs(I).empty();
    for (const Substitution &Theta : Candidates) {
      bool Engine = Sol.AtNode[I].count(Theta) != 0;
      bool Oracle =
          Dir == Direction::D_Forward
              ? oracleHolds(Dir, Gd, G, I, Theta, Registry, Univ)
              : (BackwardLive &&
                 oracleHolds(Dir, Gd, G, I, Theta, Registry, Univ));
      EXPECT_EQ(Engine, Oracle)
          << "node " << I << " theta " << Theta.str() << "\n"
          << toString(P);
    }
  }
}

class GuardSemanticsTest : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    for (const LabelDef &Def : cobalt::opts::standardLabels())
      Registry.define(Def);
  }
  LabelRegistry Registry;
};

TEST_P(GuardSemanticsTest, ConstPropGuardMatchesOracle) {
  GenOptions Options{.NumVars = 3, .NumStmts = 8, .WithLoops = false};
  Program Prog = generateProgram(Options, GetParam());
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  compareWithOracle(Direction::D_Forward, Gd, *Prog.findProc("main"),
                    Registry);
}

TEST_P(GuardSemanticsTest, DaeGuardMatchesOracle) {
  GenOptions Options{.NumVars = 3, .NumStmts = 8, .WithLoops = false};
  Program Prog = generateProgram(Options, GetParam());
  Guard Gd{fAnd(fOr(fOr(stmtIs("X := ..."), stmtIs("X := new")),
                    stmtIs("return ...")),
                fNot(labelF("mayUse", {tExpr("X")}))),
           fNot(labelF("mayUse", {tExpr("X")}))};
  compareWithOracle(Direction::D_Backward, Gd, *Prog.findProc("main"),
                    Registry);
}

TEST_P(GuardSemanticsTest, CseGuardMatchesOracle) {
  GenOptions Options{.NumVars = 3, .NumStmts = 6, .WithLoops = false};
  Program Prog = generateProgram(Options, GetParam());
  Guard Gd{fAnd(stmtIs("X := E"),
                fNot(labelF("exprUses", {tExpr("E"), tExpr("X")}))),
           fAnd(labelF("unchanged", {tExpr("E")}),
                fNot(labelF("mayDef", {tExpr("X")})))};
  compareWithOracle(Direction::D_Forward, Gd, *Prog.findProc("main"),
                    Registry);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuardSemanticsTest,
                         ::testing::Range<uint64_t>(0, 25));

/// The Figure 1 scenario as a directed example: the shaded witnessing
/// region is entered only through the enabling statement.
TEST(GuardSemanticsDirectedTest, Figure1Shape) {
  LabelRegistry Registry;
  for (const LabelDef &Def : cobalt::opts::standardLabels())
    Registry.define(Def);
  // Region entered through two different enablers on two legs; the
  // transformation point requires both.
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl y;
      decl t;
      if x goto l else r;
    l:
      y := 3;
      if 1 goto join else join;
    r:
      y := 3;
    join:
      t := y;
      return t;
    }
  )");
  const Procedure &P = Prog.Procs[0];
  Cfg G(P);
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol =
      solveGuard(Direction::D_Forward, Gd, G, Registry, nullptr);
  Substitution Y3;
  Y3.bind("Y", Binding::var("y"));
  Y3.bind("C", Binding::constant(3));
  // Node 6 is `t := y`: both legs established y = 3.
  EXPECT_TRUE(Sol.AtNode[6].count(Y3));
}

} // namespace
