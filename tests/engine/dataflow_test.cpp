//===- dataflow_test.cpp - The substitution-set dataflow solver -----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Dataflow.h"

#include "core/Builder.h"
#include "ir/Parser.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

class DataflowTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  GuardSolution solve(const char *Text, const Guard &Gd, Direction Dir) {
    Prog = parseProgramOrDie(Text);
    G.emplace(Prog.Procs.back());
    return solveGuard(Dir, Gd, *G, Registry, nullptr);
  }

  Substitution subst(std::initializer_list<std::pair<const char *, Binding>>
                         Bindings) {
    Substitution Theta;
    for (const auto &[Name, B] : Bindings)
      Theta.bind(Name, B);
    return Theta;
  }

  LabelRegistry Registry;
  Program Prog;
  std::optional<Cfg> G;
};

/// The paper's §5.2 worked example: after S1: a := 2 and S2: b := 3 the
/// facts are [Y -> a, C -> 2] and [Y -> b, C -> 3].
TEST_F(DataflowTest, Section52ConstPropFacts) {
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol = solve(R"(
    proc main(x) {
      decl a;
      decl b;
      decl c;
      a := 2;
      b := 3;
      c := a;
      return c;
    }
  )",
                            Gd, Direction::D_Forward);

  // Before `b := 3` (node 4): exactly [Y->a, C->2].
  Substitution YA = subst({{"Y", Binding::var("a")},
                           {"C", Binding::constant(2)}});
  Substitution YB = subst({{"Y", Binding::var("b")},
                           {"C", Binding::constant(3)}});
  EXPECT_EQ(Sol.AtNode[4].size(), 1u);
  EXPECT_TRUE(Sol.AtNode[4].count(YA));

  // Before `c := a` (node 5): both facts.
  EXPECT_EQ(Sol.AtNode[5].size(), 2u);
  EXPECT_TRUE(Sol.AtNode[5].count(YA));
  EXPECT_TRUE(Sol.AtNode[5].count(YB));

  // The entry node has no facts (no path has an earlier enabler).
  EXPECT_TRUE(Sol.AtNode[0].empty());
}

TEST_F(DataflowTest, FactsKilledByRedefinition) {
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol = solve(R"(
    proc main(x) {
      decl a;
      a := 2;
      a := x;
      x := a;
      return x;
    }
  )",
                            Gd, Direction::D_Forward);
  // After a := x (node 2) kills [Y->a,C->2]; node 3 sees nothing.
  EXPECT_TRUE(Sol.AtNode[3].empty());
}

TEST_F(DataflowTest, MergeIntersectsBranches) {
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol = solve(R"(
    proc main(x) {
      decl a;
      decl b;
      if x goto t else f;
    t:
      a := 1;
      if 1 goto join else join;
    f:
      a := 1;
      b := 2;
    join:
      return a;
    }
  )",
                            Gd, Direction::D_Forward);
  // At the join (node 7): a := 1 holds on both legs; b := 2 only on one.
  Substitution A1 = subst({{"Y", Binding::var("a")},
                           {"C", Binding::constant(1)}});
  Substitution B2 = subst({{"Y", Binding::var("b")},
                           {"C", Binding::constant(2)}});
  EXPECT_TRUE(Sol.AtNode[7].count(A1));
  EXPECT_FALSE(Sol.AtNode[7].count(B2));
}

TEST_F(DataflowTest, LoopKillsFactsThatCrossBackEdge) {
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol = solve(R"(
    proc main(n) {
      decl i;
      decl a;
      decl g;
      a := 7;
      i := 0;
    head:
      g := i < n;
      if g goto body else done;
    body:
      i := i + 1;
      if 1 goto head else head;
    done:
      return a;
    }
  )",
                            Gd, Direction::D_Forward);
  // [Y->a, C->7] survives the loop (a never redefined): it must hold at
  // the return (node 9) even though the loop's back edge merges in.
  Substitution A7 = subst({{"Y", Binding::var("a")},
                           {"C", Binding::constant(7)}});
  EXPECT_TRUE(Sol.AtNode[9].count(A7));
  // [Y->i, C->0] must NOT survive into the loop body (i := i + 1 kills
  // it around the back edge).
  Substitution I0 = subst({{"Y", Binding::var("i")},
                           {"C", Binding::constant(0)}});
  EXPECT_FALSE(Sol.AtNode[7].count(I0));
  // But it does reach the loop head test on the first pass... the back
  // edge destroys it at the merge:
  EXPECT_FALSE(Sol.AtNode[5].count(I0));
}

TEST_F(DataflowTest, BackwardGuardFlowsFromExits) {
  // DAE-style guard: enabled by a later redefinition or return.
  Guard Gd{fAnd(fOr(fOr(stmtIs("X := ..."), stmtIs("X := new")),
                    stmtIs("return ...")),
                fNot(labelF("mayUse", {tExpr("X")}))),
           fNot(labelF("mayUse", {tExpr("X")}))};
  GuardSolution Sol = solve(R"(
    proc main(x) {
      decl a;
      decl b;
      a := 5;
      b := a;
      b := 7;
      return b;
    }
  )",
                            Gd, Direction::D_Backward);
  // At node 2 (`a := 5`): `a` is dead (b := a uses it... so NOT dead).
  Substitution XA = subst({{"X", Binding::var("a")}});
  EXPECT_FALSE(Sol.AtNode[2].count(XA));
  // At node 3 (`b := a`): b is redefined at node 4 without use: dead.
  Substitution XB = subst({{"X", Binding::var("b")}});
  EXPECT_TRUE(Sol.AtNode[3].count(XB));
  // Return nodes have no backward facts.
  EXPECT_TRUE(Sol.AtNode[5].empty());
}

TEST_F(DataflowTest, TrivialBackwardGuardHoldsAtNonExits) {
  Guard Gd{fTrue(), fFalse()};
  GuardSolution Sol = solve(R"(
    proc main(x) {
      skip;
      x := x;
      return x;
    }
  )",
                            Gd, Direction::D_Backward);
  EXPECT_EQ(Sol.AtNode[0].size(), 1u); // the empty substitution
  EXPECT_EQ(Sol.AtNode[1].size(), 1u);
  EXPECT_TRUE(Sol.AtNode[2].empty()); // the return
}

TEST_F(DataflowTest, UnreachableNodesGetNoFacts) {
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol = solve(R"(
    proc main(x) {
      decl a;
      a := 2;
      if 1 goto end else end;
      x := a;
    end:
      return x;
    }
  )",
                            Gd, Direction::D_Forward);
  EXPECT_TRUE(Sol.AtNode[3].empty()); // unreachable x := a
}

TEST_F(DataflowTest, FixpointIterationCountReported) {
  Guard Gd{stmtIs("Y := C"), fNot(labelF("mayDef", {tExpr("Y")}))};
  GuardSolution Sol = solve("proc main(x) { decl a; a := 1; return a; }",
                            Gd, Direction::D_Forward);
  EXPECT_GE(Sol.Iterations, 3u);
}

} // namespace
