//===- engine_test.cpp - End-to-end optimization execution ----------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "core/Builder.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

class EngineTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  /// Runs one optimization over main; returns the transformed text.
  std::string optimize(const Optimization &O, const char *Text,
                       RunStats *Stats = nullptr,
                       const Labeling *Labels = nullptr) {
    Program Prog = parseProgramOrDie(Text);
    Procedure &Main = *Prog.findProc("main");
    RunStats S = runOptimization(O, Main, Registry, Labels);
    if (Stats)
      *Stats = S;
    EXPECT_EQ(validateProgram(Prog), std::nullopt) << toString(Prog);
    return toString(Main);
  }

  LabelRegistry Registry;
};

TEST_F(EngineTest, ConstPropSection52Example) {
  RunStats Stats;
  std::string Out = optimize(opts::constProp(), R"(
    proc main(x) {
      decl a;
      decl b;
      decl c;
      a := 2;
      b := 3;
      c := a;
      return c;
    }
  )",
                             &Stats);
  EXPECT_NE(Out.find("c := 2"), std::string::npos) << Out;
  EXPECT_EQ(Stats.AppliedCount, 1u);
}

TEST_F(EngineTest, ConstPropStopsAtRedefinition) {
  std::string Out = optimize(opts::constProp(), R"(
    proc main(x) {
      decl a;
      decl c;
      a := 2;
      a := x;
      c := a;
      return c;
    }
  )");
  EXPECT_EQ(Out.find("c := 2"), std::string::npos) << Out;
}

TEST_F(EngineTest, ConstPropConservativeAroundPointerStores) {
  // *p := x may define a (p could point to a): the fact must die.
  std::string Out = optimize(opts::constProp(), R"(
    proc main(x) {
      decl a;
      decl p;
      decl c;
      a := 2;
      p := &a;
      *p := x;
      c := a;
      return c;
    }
  )");
  EXPECT_EQ(Out.find("c := 2"), std::string::npos) << Out;
}

TEST_F(EngineTest, ConstPropPreciseUsesTaintLabels) {
  const char *Text = R"(
    proc main(x) {
      decl a;
      decl b;
      decl p;
      decl c;
      a := 2;
      p := &b;
      *p := x;
      c := a;
      return c;
    }
  )";
  // Conservative: the pointer store kills the fact.
  std::string Conservative = optimize(opts::constProp(), Text);
  EXPECT_EQ(Conservative.find("c := 2"), std::string::npos) << Conservative;

  // Precise: run the taint analysis first; only b is tainted, so a's
  // fact survives the store.
  Program Prog = parseProgramOrDie(Text);
  Procedure &Main = *Prog.findProc("main");
  Labeling Labels;
  runPureAnalysis(opts::taintAnalysis(), Main, Registry, Labels);
  RunStats Stats =
      runOptimization(opts::constPropPrecise(), Main, Registry, &Labels);
  EXPECT_GE(Stats.AppliedCount, 1u);
  EXPECT_NE(toString(Main).find("c := 2"), std::string::npos)
      << toString(Main);
}

TEST_F(EngineTest, ConstPropFoldPropagatesFoldedValue) {
  std::string Out = optimize(opts::constPropFold(), R"(
    proc main(x) {
      decl a;
      decl c;
      a := 2 + 3;
      c := a;
      return c;
    }
  )");
  EXPECT_NE(Out.find("c := 5"), std::string::npos) << Out;
}

TEST_F(EngineTest, ConstFoldAddRewritesInPlace) {
  std::string Out = optimize(opts::constFoldAdd(), R"(
    proc main(x) {
      decl a;
      a := 2 + 3;
      return a;
    }
  )");
  EXPECT_NE(Out.find("a := 5"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("2 + 3"), std::string::npos) << Out;
}

TEST_F(EngineTest, AlgebraicSimplifications) {
  std::string Out = optimize(opts::simplifyAddZero(), R"(
    proc main(x) {
      decl a;
      a := x + 0;
      return a;
    }
  )");
  EXPECT_NE(Out.find("a := x;"), std::string::npos) << Out;

  Out = optimize(opts::simplifyMulZero(), R"(
    proc main(x) {
      decl a;
      a := x * 0;
      return a;
    }
  )");
  EXPECT_NE(Out.find("a := 0;"), std::string::npos) << Out;

  Out = optimize(opts::simplifySubSelf(), R"(
    proc main(x) {
      decl a;
      a := x - x;
      return a;
    }
  )");
  EXPECT_NE(Out.find("a := 0;"), std::string::npos) << Out;

  // But x - y with distinct variables is untouched.
  Out = optimize(opts::simplifySubSelf(), R"(
    proc main(x) {
      decl a;
      decl y;
      a := x - y;
      return a;
    }
  )");
  EXPECT_NE(Out.find("a := x - y;"), std::string::npos) << Out;
}

TEST_F(EngineTest, CopyPropRewritesUse) {
  std::string Out = optimize(opts::copyProp(), R"(
    proc main(x) {
      decl a;
      decl c;
      a := x;
      c := a;
      return c;
    }
  )");
  EXPECT_NE(Out.find("c := x"), std::string::npos) << Out;
}

TEST_F(EngineTest, CseEliminatesRecomputation) {
  std::string Out = optimize(opts::cse(), R"(
    proc main(x) {
      decl a;
      decl b;
      decl t;
      a := x + 1;
      b := x + 1;
      return b;
    }
  )");
  EXPECT_NE(Out.find("b := a"), std::string::npos) << Out;
}

TEST_F(EngineTest, CseBlockedWhenOperandChanges) {
  std::string Out = optimize(opts::cse(), R"(
    proc main(x) {
      decl a;
      decl b;
      a := x + 1;
      x := 0;
      b := x + 1;
      return b;
    }
  )");
  EXPECT_EQ(Out.find("b := a"), std::string::npos) << Out;
}

TEST_F(EngineTest, StoreForwardReplacesLoad) {
  // store_forward needs notTainted(P) (a self-pointing P breaks it), so
  // the taint analysis must run first.
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl p;
      decl b;
      p := &a;
      *p := x;
      b := *p;
      return b;
    }
  )");
  Procedure &Main = *Prog.findProc("main");
  Labeling Labels;
  runPureAnalysis(opts::taintAnalysis(), Main, Registry, Labels);
  RunStats Stats =
      runOptimization(opts::storeForward(), Main, Registry, &Labels);
  EXPECT_EQ(Stats.AppliedCount, 1u);
  EXPECT_NE(toString(Main).find("b := x"), std::string::npos)
      << toString(Main);
}

TEST_F(EngineTest, LoadCseRequiresTaintInfo) {
  const char *Text = R"(
    proc main(x) {
      decl a;
      decl b;
      decl t;
      decl p;
      p := &t;
      a := *p;
      b := *p;
      return b;
    }
  )";
  // Without taint labels the intervening statements can't be proven
  // innocuous... here there are none between the two loads, so even the
  // conservative run rewrites. Put a disturbance in between:
  const char *TextWithAssign = R"(
    proc main(x) {
      decl a;
      decl b;
      decl c;
      decl t;
      decl p;
      p := &t;
      a := *p;
      c := 1;
      b := *p;
      return b;
    }
  )";
  // derefUnchanged(P) at `c := 1` needs notTainted(c): without labels it
  // fails, with labels it succeeds (c's address is never taken).
  Program P1 = parseProgramOrDie(TextWithAssign);
  RunStats S1 = runOptimization(opts::loadCse(), *P1.findProc("main"),
                                Registry, nullptr);
  EXPECT_EQ(S1.AppliedCount, 0u);

  Program P2 = parseProgramOrDie(TextWithAssign);
  Procedure &Main2 = *P2.findProc("main");
  Labeling Labels;
  runPureAnalysis(opts::taintAnalysis(), Main2, Registry, Labels);
  RunStats S2 = runOptimization(opts::loadCse(), Main2, Registry, &Labels);
  EXPECT_EQ(S2.AppliedCount, 1u);
  EXPECT_NE(toString(Main2).find("b := a"), std::string::npos)
      << toString(Main2);
  (void)Text;
}

TEST_F(EngineTest, BranchFoldThenTaken) {
  const char *Text = R"(
    proc main(x) {
      decl a;
      a := 1;
      if a goto t else f;
    t:
      x := 10;
    f:
      return x;
    }
  )";
  Program Prog = parseProgramOrDie(Text);
  Procedure &Main = *Prog.findProc("main");
  runOptimization(opts::branchFold(), Main, Registry, nullptr);
  EXPECT_NE(toString(Main).find("if 1 goto"), std::string::npos)
      << toString(Main);
  runOptimization(opts::branchTaken(), Main, Registry, nullptr);
  EXPECT_NE(toString(Main).find("if 1 goto 3 else 3"), std::string::npos)
      << toString(Main);
}

TEST_F(EngineTest, BranchNotTakenFoldsToElseTarget) {
  const char *Text = R"(
    proc main(x) {
      decl a;
      a := 0;
      if a goto t else f;
    t:
      x := 10;
    f:
      return x;
    }
  )";
  Program Prog = parseProgramOrDie(Text);
  Procedure &Main = *Prog.findProc("main");
  runOptimization(opts::branchFold(), Main, Registry, nullptr);
  runOptimization(opts::branchNotTaken(), Main, Registry, nullptr);
  EXPECT_NE(toString(Main).find("if 1 goto 4 else 4"), std::string::npos)
      << toString(Main);
}

TEST_F(EngineTest, DeadAssignElimRemovesDeadStore) {
  std::string Out = optimize(opts::deadAssignElim(), R"(
    proc main(x) {
      decl a;
      a := 5;
      a := x;
      return a;
    }
  )");
  // The first a := 5 is dead (redefined without use).
  EXPECT_NE(Out.find("1: skip"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a := x"), std::string::npos) << Out;
}

TEST_F(EngineTest, DeadAssignElimKeepsLiveStore) {
  std::string Out = optimize(opts::deadAssignElim(), R"(
    proc main(x) {
      decl a;
      a := 5;
      x := a;
      return x;
    }
  )");
  EXPECT_NE(Out.find("a := 5"), std::string::npos) << Out;
}

TEST_F(EngineTest, DeadAssignElimConservativeAroundPointers) {
  // a's value may be read through *p: the assignment is not dead.
  std::string Out = optimize(opts::deadAssignElim(), R"(
    proc main(x) {
      decl a;
      decl p;
      p := &a;
      a := 5;
      x := *p;
      a := 0;
      return x;
    }
  )");
  EXPECT_NE(Out.find("a := 5"), std::string::npos) << Out;
}

TEST_F(EngineTest, SelfAssignRemoval) {
  std::string Out = optimize(opts::selfAssignRemoval(), R"(
    proc main(x) {
      decl a;
      a := a;
      a := x;
      return a;
    }
  )");
  EXPECT_NE(Out.find("1: skip"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a := x"), std::string::npos) << Out;
}

TEST_F(EngineTest, RedundantBranchElim) {
  std::string Out = optimize(opts::redundantBranchElim(), R"(
    proc main(x) {
      decl a;
      if a goto end else end;
    end:
      return x;
    }
  )");
  EXPECT_NE(Out.find("if 1 goto 2 else 2"), std::string::npos) << Out;
}

TEST_F(EngineTest, PreDuplicateInsertsInElseBranch) {
  // The paper's §2.3 fragment: x := a + b is partially redundant.
  const char *Text = R"(
    proc main(n) {
      decl a;
      decl b;
      decl x;
      b := n;
      if n goto t else f;
    t:
      a := 1;
      x := a + b;
      if 1 goto join else join;
    f:
      skip;
    join:
      x := a + b;
      return x;
    }
  )";
  RunStats Stats;
  std::string Out = optimize(opts::preDuplicate(), Text, &Stats);
  EXPECT_GE(Stats.AppliedCount, 1u);
  // The skip in the else leg (node 8) became x := a + b.
  EXPECT_NE(Out.find("8: x := a + b"), std::string::npos) << Out;
}

TEST_F(EngineTest, Delta_MatchesDefinitionSites) {
  Optimization O = opts::constProp();
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl c;
      decl d;
      a := 2;
      c := a;
      d := a;
      return d;
    }
  )");
  RunStats Stats;
  auto Delta = computeDelta(O.Pat, *Prog.findProc("main"), Registry,
                            nullptr, &Stats);
  ASSERT_EQ(Delta.size(), 2u);
  EXPECT_EQ(Delta[0].Index, 4);
  EXPECT_EQ(Delta[1].Index, 5);
  EXPECT_EQ(Delta[0].Theta.lookup("X")->asVar(), "c");
  EXPECT_EQ(Delta[1].Theta.lookup("X")->asVar(), "d");
}

TEST_F(EngineTest, ChooseSubsetOnlyAppliesSelection) {
  Optimization O = opts::constProp();
  // Select only the first legal site.
  O.Choose = [](const std::vector<MatchSite> &Delta, const Procedure &) {
    std::vector<MatchSite> Out;
    if (!Delta.empty())
      Out.push_back(Delta.front());
    return Out;
  };
  std::string Out = optimize(O, R"(
    proc main(x) {
      decl a;
      decl c;
      decl d;
      a := 2;
      c := a;
      d := a;
      return d;
    }
  )");
  EXPECT_NE(Out.find("c := 2"), std::string::npos) << Out;
  EXPECT_NE(Out.find("d := a"), std::string::npos) << Out;
}

TEST_F(EngineTest, ChooseCannotInventSites) {
  Optimization O = opts::constProp();
  O.Choose = [](const std::vector<MatchSite> &, const Procedure &) {
    // A malicious heuristic returning a fabricated site.
    Substitution Theta;
    Theta.bind("X", Binding::var("x"));
    Theta.bind("Y", Binding::var("x"));
    Theta.bind("C", Binding::constant(777));
    return std::vector<MatchSite>{{0, Theta}};
  };
  std::string Out = optimize(O, R"(
    proc main(x) {
      decl a;
      a := 2;
      x := a;
      return x;
    }
  )");
  EXPECT_EQ(Out.find("777"), std::string::npos) << Out;
}

TEST_F(EngineTest, TaintAnalysisLabelsUntaintedVars) {
  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl b;
      decl p;
      p := &a;
      b := 1;
      return b;
    }
  )");
  Procedure &Main = *Prog.findProc("main");
  Labeling Labels;
  RunStats Stats;
  runPureAnalysis(opts::taintAnalysis(), Main, Registry, Labels, &Stats);
  EXPECT_GT(Stats.DeltaSize, 0u);

  GroundLabel NotTaintedA{"notTainted", {Binding::var("a")}};
  GroundLabel NotTaintedB{"notTainted", {Binding::var("b")}};
  // After p := &a (node 4 onward), a is tainted but b is not.
  EXPECT_FALSE(Labels[4].count(NotTaintedA));
  EXPECT_TRUE(Labels[4].count(NotTaintedB));
  // Before the address-taking (node 3), a is still untainted.
  EXPECT_TRUE(Labels[3].count(NotTaintedA));
}

} // namespace
