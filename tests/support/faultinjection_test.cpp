//===- faultinjection_test.cpp - Deterministic fault plans ----------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace cobalt::support;

namespace {

TEST(FaultInjectionTest, EmptyPlanNeverFires) {
  FaultInjector &FI = FaultInjector::instance();
  FI.reset();
  EXPECT_TRUE(FI.empty());
  EXPECT_FALSE(faultFires("some.site"));
}

TEST(FaultInjectionTest, AlwaysRuleFiresEveryHit) {
  ScopedFaultPlan Plan("a.site");
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(faultFires("a.site"));
  EXPECT_FALSE(faultFires("other.site"));
  FaultInjector &FI = FaultInjector::instance();
  EXPECT_EQ(FI.hits("a.site"), 5u);
  EXPECT_EQ(FI.fired("a.site"), 5u);
}

TEST(FaultInjectionTest, NthRuleFiresExactlyOnce) {
  ScopedFaultPlan Plan("a.site@3");
  EXPECT_FALSE(faultFires("a.site"));
  EXPECT_FALSE(faultFires("a.site"));
  EXPECT_TRUE(faultFires("a.site"));
  EXPECT_FALSE(faultFires("a.site"));
  EXPECT_EQ(FaultInjector::instance().fired("a.site"), 1u);
}

TEST(FaultInjectionTest, PercentRuleIsDeterministicPerSeed) {
  auto Sample = [](uint64_t Seed) {
    ScopedFaultPlan Plan("a.site%50", Seed);
    std::vector<bool> Decisions;
    for (int I = 0; I < 64; ++I)
      Decisions.push_back(faultFires("a.site"));
    return Decisions;
  };
  // Same seed → identical decisions; the rate is in the right ballpark.
  std::vector<bool> A = Sample(7), B = Sample(7);
  EXPECT_EQ(A, B);
  unsigned Fired = 0;
  for (bool D : A)
    Fired += D;
  EXPECT_GT(Fired, 16u);
  EXPECT_LT(Fired, 48u);
  // Extreme rates behave as expected.
  {
    ScopedFaultPlan Plan("a.site%0");
    for (int I = 0; I < 16; ++I)
      EXPECT_FALSE(faultFires("a.site"));
  }
  {
    ScopedFaultPlan Plan("a.site%100");
    for (int I = 0; I < 16; ++I)
      EXPECT_TRUE(faultFires("a.site"));
  }
}

TEST(FaultInjectionTest, MultiClausePlansAreIndependent) {
  ScopedFaultPlan Plan(" a.site@1 , b.site ");
  EXPECT_TRUE(faultFires("b.site"));
  EXPECT_TRUE(faultFires("a.site"));
  EXPECT_FALSE(faultFires("a.site"));
  EXPECT_TRUE(faultFires("b.site"));
}

TEST(FaultInjectionTest, ScopedPlanRestoresEmptyState) {
  {
    ScopedFaultPlan Plan("a.site");
    EXPECT_TRUE(faultFires("a.site"));
  }
  EXPECT_TRUE(FaultInjector::instance().empty());
  EXPECT_FALSE(faultFires("a.site"));
}

} // namespace
