//===- diagnostics_test.cpp - DiagnosticEngine ordering contract ----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the DiagnosticEngine rendering contract tools rely on:
/// diagnostics render in exactly the order they were reported —
/// severities interleave as emitted, so a note stays attached to the
/// diagnostic it elaborates — and every line carries its severity
/// prefix. Also covers the error/warning counters.
///
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace cobalt;

namespace {

TEST(DiagnosticsTest, RendersInInsertionOrder) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc{1, 2}, "shadowed binding");
  Diags.error(SourceLoc{3, 7}, "unknown label");
  Diags.note(SourceLoc{3, 1}, "defined here");
  Diags.error("module rejected");

  // No reordering or grouping: the warning stays first even though
  // errors are more severe, and the note stays glued to its error.
  EXPECT_EQ(Diags.str(), "warning at 1:2: shadowed binding\n"
                         "error at 3:7: unknown label\n"
                         "note at 3:1: defined here\n"
                         "error: module rejected");

  const std::vector<Diagnostic> &All = Diags.diagnostics();
  ASSERT_EQ(All.size(), 4u);
  EXPECT_EQ(All[0].Kind, DiagKind::DK_Warning);
  EXPECT_EQ(All[1].Kind, DiagKind::DK_Error);
  EXPECT_EQ(All[2].Kind, DiagKind::DK_Note);
  EXPECT_EQ(All[3].Kind, DiagKind::DK_Error);
}

TEST(DiagnosticsTest, CountsBySeverity) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_EQ(Diags.warningCount(), 0u);

  Diags.warning("w1");
  Diags.warning(SourceLoc{4, 4}, "w2");
  EXPECT_FALSE(Diags.hasErrors()) << "warnings are not errors";
  EXPECT_EQ(Diags.warningCount(), 2u);

  Diags.error("e1");
  Diags.note(SourceLoc{1, 1}, "n1"); // notes count as neither
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.warningCount(), 2u);
}

TEST(DiagnosticsTest, LocationlessDiagnosticsOmitTheLocation) {
  DiagnosticEngine Diags;
  Diags.warning("free-floating");
  EXPECT_EQ(Diags.str(), "warning: free-floating");
}

} // namespace
