//===- lexer_test.cpp - Unit tests for the shared lexer -------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Lexer.h"

#include <gtest/gtest.h>

using namespace cobalt;

namespace {

std::vector<Token> lexAll(std::string_view Text, DiagnosticEngine &Diags) {
  Lexer Lex(Text, Diags);
  std::vector<Token> Out;
  while (true) {
    Token Tok = Lex.lex();
    if (Tok.is(TokenKind::TK_End))
      break;
    Out.push_back(Tok);
  }
  return Out;
}

TEST(LexerTest, IdentifiersAndInts) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("foo bar42 123 0", Diags);
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_TRUE(Toks[0].isIdent("foo"));
  EXPECT_TRUE(Toks[1].isIdent("bar42"));
  EXPECT_TRUE(Toks[2].is(TokenKind::TK_Int));
  EXPECT_EQ(Toks[2].IntValue, 123);
  EXPECT_EQ(Toks[3].IntValue, 0);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, MultiCharPunctuatorsLexGreedily) {
  DiagnosticEngine Diags;
  auto Toks = lexAll(":= == != <= >= => ->", Diags);
  ASSERT_EQ(Toks.size(), 7u);
  EXPECT_TRUE(Toks[0].isPunct(":="));
  EXPECT_TRUE(Toks[1].isPunct("=="));
  EXPECT_TRUE(Toks[2].isPunct("!="));
  EXPECT_TRUE(Toks[3].isPunct("<="));
  EXPECT_TRUE(Toks[4].isPunct(">="));
  EXPECT_TRUE(Toks[5].isPunct("=>"));
  EXPECT_TRUE(Toks[6].isPunct("->"));
}

TEST(LexerTest, ColonEqualsVersusColon) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("x := y : z", Diags);
  ASSERT_EQ(Toks.size(), 5u);
  EXPECT_TRUE(Toks[1].isPunct(":="));
  EXPECT_TRUE(Toks[3].isPunct(":"));
}

TEST(LexerTest, EllipsisAndWildcard) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("... _ .", Diags);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[0].is(TokenKind::TK_Ellipsis));
  EXPECT_TRUE(Toks[1].isPunct("_"));
  EXPECT_TRUE(Toks[2].isPunct("."));
}

TEST(LexerTest, CommentsAreSkipped) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("a // comment to end\nb # another\nc", Diags);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[0].isIdent("a"));
  EXPECT_TRUE(Toks[1].isIdent("b"));
  EXPECT_TRUE(Toks[2].isIdent("c"));
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("a\n  b", Diags);
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[0].Loc.Column, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Column, 3u);
}

TEST(LexerTest, UnrecognizedCharacterIsDiagnosed) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("a $ b", Diags);
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[1].is(TokenKind::TK_Error));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, PeekDoesNotConsume) {
  DiagnosticEngine Diags;
  Lexer Lex("x y", Diags);
  EXPECT_TRUE(Lex.peek().isIdent("x"));
  EXPECT_TRUE(Lex.peek().isIdent("x"));
  EXPECT_TRUE(Lex.lex().isIdent("x"));
  EXPECT_TRUE(Lex.lex().isIdent("y"));
  EXPECT_TRUE(Lex.lex().is(TokenKind::TK_End));
}

TEST(LexerTest, UnlexPushesBack) {
  DiagnosticEngine Diags;
  Lexer Lex("x y z", Diags);
  Token X = Lex.lex();
  EXPECT_TRUE(Lex.peek().isIdent("y"));
  Lex.unlex(X);
  EXPECT_TRUE(Lex.lex().isIdent("x"));
  EXPECT_TRUE(Lex.lex().isIdent("y"));
  EXPECT_TRUE(Lex.lex().isIdent("z"));
}

TEST(LexerTest, PrimesAllowedInIdentifiers) {
  DiagnosticEngine Diags;
  auto Toks = lexAll("x' eta_old", Diags);
  ASSERT_EQ(Toks.size(), 2u);
  EXPECT_TRUE(Toks[0].isIdent("x'"));
  EXPECT_TRUE(Toks[1].isIdent("eta_old"));
}

} // namespace
