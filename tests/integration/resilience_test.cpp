//===- resilience_test.cpp - The pipeline survives injected faults --------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The acceptance scenario of the fault-tolerance work, end to end: with
/// faults injected into the prover, the rewrite engine, and the
/// interpreter, a full check-then-optimize pipeline must complete
/// without crashing, roll back every failed pass, keep applying the
/// genuinely proven optimizations, and preserve program semantics
/// throughout. Degradation is visible (reports, lastRunDegraded) but
/// never fatal and never unsound.
///
//===----------------------------------------------------------------------===//

#include "checker/Soundness.h"
#include "engine/PassManager.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Buggy.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;
using support::ErrorKind;
using support::ScopedFaultPlan;
namespace faults = cobalt::support::faults;

namespace {

const char *PipelineProgram = R"(
  proc main(x) {
    decl a;
    decl b;
    decl c;
    decl p;
    a := 2;
    p := &b;
    *p := x;
    c := a + 0;
    c := c * 1;
    if x goto t else f;
  t:
    b := a;
    if 1 goto join else join;
  f:
    b := c;
  join:
    return b;
  }
)";

/// Semantics must agree with the original on every input where the
/// original returns (the paper's soundness direction).
void expectSameSemantics(const Program &Original, const Program &Optimized) {
  for (int64_t In : {0, 1, -1, 2, 7, 42, -13}) {
    Interpreter IO(Original), IT(Optimized);
    RunResult RO = IO.run(In), RT = IT.run(In);
    if (!RO.returned())
      continue;
    ASSERT_TRUE(RT.returned())
        << "input " << In << "\n" << toString(Optimized);
    EXPECT_EQ(RO.Result, RT.Result)
        << "input " << In << "\n" << toString(Optimized);
  }
}

TEST(ResilienceTest, FullPipelineSurvivesMixedFaultStorm) {
  PassManager PM;
  for (PureAnalysis &A : opts::allAnalyses())
    PM.addAnalysis(std::move(A));
  for (Optimization &O : opts::allOptimizations())
    PM.addOptimization(std::move(O));

  Program Prog = parseProgramOrDie(PipelineProgram);
  Program Original = Prog;

  std::vector<PassReport> Reports;
  {
    // 40% of rewrites explode mid-flight, 10% of interpreter runs go
    // stuck (spurious spot-check failures). Deterministic for the seed:
    // %P decisions are keyed on the per-procedure job fingerprint, so
    // the same faults fire at every --jobs width.
    ScopedFaultPlan Plan(std::string(faults::EngineThrowMidRewrite) +
                             "%40," + faults::InterpForceStuck + "%10",
                         /*Seed=*/3);
    Reports = PM.run(Prog); // must not throw
  }

  // Every pass produced a report — nothing aborted the pipeline — and
  // every failure was contained: rolled back (or quarantine-skipped)
  // with zero net rewrites.
  EXPECT_FALSE(Reports.empty());
  bool AnyFailed = false, AnyApplied = false;
  for (const PassReport &R : Reports) {
    if (R.failed()) {
      AnyFailed = true;
      EXPECT_TRUE(R.RolledBack || R.Quarantined) << R.PassName;
      EXPECT_EQ(R.AppliedCount, 0u) << R.PassName;
    }
    AnyApplied = AnyApplied || R.AppliedCount > 0;
  }
  EXPECT_TRUE(AnyFailed) << "fault plan fired nothing; storm too weak";
  EXPECT_TRUE(AnyApplied) << "no pass survived; storm too strong";
  EXPECT_TRUE(PM.lastRunDegraded());

  // All surviving rewrites came from proven-sound passes: semantics are
  // intact (verified with the fault plan cleared).
  expectSameSemantics(Original, Prog);
}

TEST(ResilienceTest, OnlyProvenOptimizationsAreApplied) {
  // The cobaltc gate, programmatically: a definition whose proof
  // degrades (here: every prover call times out) must not be applied,
  // while a genuinely proven one still is.
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  checker::SoundnessChecker Checker(Registry);

  checker::CheckReport Degraded;
  {
    ScopedFaultPlan Plan(faults::CheckerForceTimeout);
    Degraded = Checker.checkOptimization(opts::simplifyAddZero());
  }
  checker::CheckReport Proven =
      Checker.checkOptimization(opts::simplifyMulOne());

  ASSERT_EQ(Degraded.V, checker::CheckReport::Verdict::V_Unproven);
  ASSERT_TRUE(Proven.Sound) << Proven.str();

  PassManager PM;
  Optimization AddZero = opts::simplifyAddZero();
  Optimization MulOne = opts::simplifyMulOne();
  if (Degraded.Sound) // it is not — the gate keeps it out
    PM.addOptimization(std::move(AddZero));
  if (Proven.Sound)
    PM.addOptimization(std::move(MulOne));

  Program Prog = parseProgramOrDie(PipelineProgram);
  Program Original = Prog;
  PM.run(Prog);

  std::string Out = toString(Prog);
  EXPECT_NE(Out.find("a + 0"), std::string::npos) << Out; // gated out
  EXPECT_EQ(Out.find("* 1"), std::string::npos) << Out;   // proven, applied
  EXPECT_FALSE(PM.lastRunDegraded());
  expectSameSemantics(Original, Prog);
}

TEST(ResilienceTest, UnsoundRuleIsContainedWhileProvenRulesApply) {
  // Defense in depth: even if an unsound rule sneaks past the static
  // gate, the transactional spot-check rejects and rolls it back at run
  // time — and the proven rules around it still do their work.
  PassManager PM;
  PM.addOptimization(opts::constPropNoGuard().Opt);
  PM.addOptimization(opts::simplifyMulOne());

  Program Prog = parseProgramOrDie(R"(
    proc main(x) {
      decl a;
      decl b;
      decl c;
      a := 7;
      a := x;
      b := a;
      c := b * 1;
      return c;
    }
  )");
  Program Original = Prog;

  auto Reports = PM.run(Prog);
  ASSERT_EQ(Reports.size(), 2u);
  EXPECT_EQ(Reports[0].Err.Kind, ErrorKind::EK_RewriteConflict);
  EXPECT_TRUE(Reports[0].RolledBack);
  EXPECT_EQ(Reports[1].Err.Kind, ErrorKind::EK_None);
  EXPECT_EQ(Reports[1].AppliedCount, 1u);
  EXPECT_TRUE(PM.lastRunDegraded());
  expectSameSemantics(Original, Prog);
}

} // namespace
