//===- noninterference_test.cpp - Any subset of Δ is sound (E5) -----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E5 (paper §4.1): a Cobalt transformation pattern cannot
/// interfere with itself — if each suggested transformation is correct in
/// isolation, *any subset* may be applied together. We exercise random
/// subsets of Δ via custom choose functions, and reproduce the paper's
/// S1/S2 example showing why DAE + redundant-assignment elimination must
/// be two separate optimizations.
///
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "ir/Generator.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

#include <random>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

void expectEquivalent(const Program &Original, const Program &Optimized,
                      const std::string &What) {
  for (int64_t Input : {-3, 0, 1, 5}) {
    Interpreter IO(Original), IT(Optimized);
    RunResult RO = IO.run(Input, 300000);
    if (!RO.returned())
      continue;
    RunResult RT = IT.run(Input, 600000);
    ASSERT_TRUE(RT.returned()) << What << " input " << Input;
    EXPECT_EQ(RO.Result, RT.Result)
        << What << " input " << Input << "\noriginal:\n"
        << toString(Original) << "optimized:\n"
        << toString(Optimized);
  }
}

class NoninterferenceTest : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }
  LabelRegistry Registry;
};

TEST_P(NoninterferenceTest, RandomSubsetsOfDeltaPreserveSemantics) {
  GenOptions Options{.NumVars = 4, .NumStmts = 16};
  Program Original = generateProgram(Options, GetParam());
  std::mt19937_64 Rng(GetParam() * 7919 + 13);

  for (const Optimization &Base : opts::allOptimizations()) {
    // Each subset trial: keep each legal site with probability 1/2.
    for (int Trial = 0; Trial < 3; ++Trial) {
      Optimization O = Base;
      uint64_t Salt = Rng();
      O.Choose = [Salt](const std::vector<MatchSite> &Delta,
                        const Procedure &) {
        std::mt19937_64 Local(Salt);
        std::vector<MatchSite> Out;
        for (const MatchSite &Site : Delta)
          if (Local() % 2 == 0)
            Out.push_back(Site);
        return Out;
      };
      Program Optimized = Original;
      runOptimization(O, *Optimized.findProc("main"), Registry, nullptr);
      ASSERT_EQ(validateProgram(Optimized), std::nullopt)
          << Base.Name << "\n"
          << toString(Optimized);
      expectEquivalent(Original, Optimized,
                       Base.Name + " random subset");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoninterferenceTest,
                         ::testing::Range<uint64_t>(0, 8));

/// The §4.1 example: S1: x := x + 1; S2: x := x + 1. A combined
/// dead+redundant assignment eliminator would remove both — changing
/// semantics. Written as Cobalt patterns, DAE alone never suggests both
/// (S1 is not dead: S2 uses x), so every subset is safe.
TEST(NoninterferenceDirected, Section41DoubleIncrement) {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);

  Program Prog = parseProgramOrDie(R"(
    proc main(n) {
      decl x;
      x := n;
      x := x + 1;
      x := x + 1;
      return x;
    }
  )");
  Optimization Dae = opts::deadAssignElim();
  auto Delta = computeDelta(Dae.Pat, *Prog.findProc("main"), Registry,
                            nullptr);
  // Neither increment is dead (each is used downstream); Δ is empty for
  // them. DAE cannot reproduce the interference scenario by design.
  for (const MatchSite &Site : Delta)
    EXPECT_NE(Site.Index, 1);
  for (const MatchSite &Site : Delta)
    EXPECT_NE(Site.Index, 2);

  // And x := n is not dead either (x is used by S1).
  EXPECT_TRUE(Delta.empty()) << toString(Prog);
}

/// Forward pure analyses compose with forward optimizations (§4.1): the
/// precise const prop consuming taint labels must agree with plain const
/// prop wherever both fire, and be strictly more willing.
TEST(NoninterferenceDirected, ForwardAnalysisFeedsForwardOptSafely) {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");

  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    GenOptions Options{.NumVars = 4, .NumStmts = 14, .WithPointers = true};
    Program Prog = generateProgram(Options, Seed);
    Procedure &Main = *Prog.findProc("main");

    Labeling Labels;
    runPureAnalysis(opts::taintAnalysis(), Main, Registry, Labels);

    auto DeltaPlain = computeDelta(opts::constProp().Pat, Main, Registry,
                                   nullptr);
    auto DeltaPrecise = computeDelta(opts::constPropPrecise().Pat, Main,
                                     Registry, &Labels);
    // Precise subsumes plain.
    for (const MatchSite &Site : DeltaPlain)
      EXPECT_NE(std::find(DeltaPrecise.begin(), DeltaPrecise.end(), Site),
                DeltaPrecise.end())
          << "seed " << Seed;
    EXPECT_GE(DeltaPrecise.size(), DeltaPlain.size());
  }
}

} // namespace
