//===- witness_dynamic_test.cpp - Witnesses hold on real traces -----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Dynamic validation of the checker's central claim: for a forward
/// optimization, whenever the guard's dataflow fact (ι, θ) holds, the
/// witness θ(P) must be true of every concrete execution state about to
/// execute ι (paper §2.1.2 — the witness holds throughout the witnessing
/// region, and in particular at its end). We run generated programs,
/// snapshot every main-procedure state, and evaluate witnesses concretely.
///
//===----------------------------------------------------------------------===//

#include "engine/Dataflow.h"
#include "engine/Engine.h"
#include "ir/Generator.h"
#include "ir/Interp.h"
#include "ir/Printer.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

/// Runs main(Input) and snapshots the state before each top-level
/// main-procedure step (call bodies excluded: facts are intraprocedural).
std::vector<ExecState> mainTrace(const Program &Prog, int64_t Input,
                                 uint64_t Fuel = 100000) {
  Interpreter Interp(Prog);
  ExecState St = Interp.initialState(Input);
  std::vector<ExecState> Out;
  while (Fuel--) {
    if (St.Stack.empty() && St.Proc->Name == "main")
      Out.push_back(St);
    StepResult R = Interp.step(St);
    if (R != StepResult::SR_Ok)
      break;
  }
  return Out;
}

class WitnessDynamicTest : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  /// For every state about to execute ι and every θ in the guard
  /// solution at ι, the (forward) witness must evaluate to true.
  void validate(const Optimization &O, const Program &Prog) {
    const Procedure &Main = *Prog.findProc("main");
    Cfg G(Main);
    GuardSolution Sol =
        solveGuard(O.Pat.Dir, O.Pat.G, G, Registry, nullptr);

    for (int64_t Input : {-2, 0, 3, 9}) {
      for (const ExecState &St : mainTrace(Prog, Input)) {
        for (const Substitution &Theta : Sol.AtNode[St.Index]) {
          auto R = evalWitness(*O.Pat.W, Theta, &St, nullptr, nullptr);
          // Unknown (stuck witness term) only happens when execution
          // itself would be stuck; a *false* witness is a real violation.
          if (R.has_value()) {
            EXPECT_TRUE(*R)
                << O.Name << " witness " << O.Pat.W->str() << " false at "
                << St.Index << " theta " << Theta.str() << " input "
                << Input << "\n"
                << toString(Main);
          }
        }
      }
    }
  }

  LabelRegistry Registry;
};

TEST_P(WitnessDynamicTest, ConstPropWitnessHoldsOnTraces) {
  GenOptions Options{.NumVars = 4, .NumStmts = 14};
  Program Prog = generateProgram(Options, GetParam());
  validate(opts::constProp(), Prog);
}

TEST_P(WitnessDynamicTest, CopyPropWitnessHoldsOnTraces) {
  GenOptions Options{.NumVars = 4, .NumStmts = 14};
  Program Prog = generateProgram(Options, GetParam());
  validate(opts::copyProp(), Prog);
}

TEST_P(WitnessDynamicTest, CseWitnessHoldsOnTraces) {
  GenOptions Options{.NumVars = 4, .NumStmts = 14};
  Program Prog = generateProgram(Options, GetParam());
  validate(opts::cse(), Prog);
}

TEST_P(WitnessDynamicTest, WitnessHoldsWithPointerPrograms) {
  GenOptions Options{.NumVars = 3, .NumStmts = 12, .WithPointers = true};
  Program Prog = generateProgram(Options, GetParam());
  validate(opts::constProp(), Prog);
  validate(opts::storeForward(), Prog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessDynamicTest,
                         ::testing::Range<uint64_t>(0, 12));

/// The analysis witness: wherever the taint analysis labels a node
/// notTainted(x), no concrete state reaching that node has a pointer to
/// x anywhere in memory (§2.4's label semantics).
TEST(WitnessDynamicDirected, TaintLabelsMatchRuntimePointers) {
  LabelRegistry Registry;
  for (const LabelDef &Def : opts::standardLabels())
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");

  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    GenOptions Options{.NumVars = 3, .NumStmts = 12, .WithPointers = true};
    Program Prog = generateProgram(Options, Seed);
    Procedure &Main = *Prog.findProc("main");
    Labeling Labels;
    runPureAnalysis(opts::taintAnalysis(), Main, Registry, Labels);

    PureAnalysis A = opts::taintAnalysis();
    for (int64_t Input : {0, 4}) {
      for (const ExecState &St : mainTrace(Prog, Input)) {
        for (const GroundLabel &L : Labels[St.Index]) {
          if (L.Name != "notTainted")
            continue;
          Substitution Theta;
          Theta.bind("X", Binding::var(L.Args[0].asVar()));
          auto R = evalWitness(*A.W, Theta, &St, nullptr, nullptr);
          if (R.has_value()) {
            EXPECT_TRUE(*R) << "notTainted(" << L.Args[0].asVar()
                            << ") but pointed-to at " << St.Index << "\n"
                            << toString(Main);
          }
        }
      }
    }
  }
}

} // namespace
