# Golden-file runner for the examples/ binaries and tool invocations.
# Runs EXAMPLE_BIN (with optional ARGS, a semicolon-separated list),
# normalizes volatile output (wall-clock timings like "0.27 s"), and
# diffs against GOLDEN. EXPECT_RC overrides the required exit code
# (default 0) — `cobaltc validate` goldens expect 1 for a stored
# miscompile. Regenerate a golden after an intentional output change
# with:
#   cmake -DEXAMPLE_BIN=build/examples/licm \
#         -DGOLDEN=tests/integration/golden/licm.txt -DUPDATE=1 \
#         -P tests/integration/CheckGolden.cmake
if(NOT DEFINED EXPECT_RC)
  set(EXPECT_RC 0)
endif()
execute_process(COMMAND ${EXAMPLE_BIN} ${ARGS}
                OUTPUT_VARIABLE OUT
                ERROR_VARIABLE ERR
                RESULT_VARIABLE RC)
if(NOT RC EQUAL ${EXPECT_RC})
  message(FATAL_ERROR "${EXAMPLE_BIN} exited with ${RC} "
          "(expected ${EXPECT_RC})\nstderr:\n${ERR}")
endif()

# Normalize the two nondeterministic things examples print: wall-clock
# timings and Z3 counterexample models (Z3 is free to return any
# satisfying model, so the text varies run to run). A model starts after
# "failed:" / "counterexample context:" and continues on deep-indented
# (6+ space) lines.
string(REGEX REPLACE "[0-9]+\\.[0-9]+ s" "<time> s" OUT "${OUT}")
string(REGEX REPLACE "failed:[^\n]*" "failed: <model>" OUT "${OUT}")
string(REGEX REPLACE "counterexample context:[^\n]*"
       "counterexample context: <model>" OUT "${OUT}")
string(REGEX REPLACE "\n      +[^\n]*" "" OUT "${OUT}")
string(REGEX REPLACE "\n[ \t]+\n" "\n\n" OUT "${OUT}")
string(REGEX REPLACE "\n[ \t]+\n" "\n\n" OUT "${OUT}")

if(UPDATE)
  file(WRITE ${GOLDEN} "${OUT}")
  message(STATUS "updated ${GOLDEN}")
  return()
endif()

if(NOT EXISTS ${GOLDEN})
  message(FATAL_ERROR "missing golden file ${GOLDEN} (run with -DUPDATE=1)")
endif()
file(READ ${GOLDEN} WANT)
if(NOT OUT STREQUAL WANT)
  get_filename_component(NAME ${GOLDEN} NAME_WE)
  set(ACTUAL ${CMAKE_CURRENT_BINARY_DIR}/${NAME}.actual.txt)
  file(WRITE ${ACTUAL} "${OUT}")
  message(FATAL_ERROR
          "output of ${EXAMPLE_BIN} differs from ${GOLDEN}\n"
          "actual (normalized) output written to ${ACTUAL}\n"
          "if the change is intentional, regenerate with -DUPDATE=1")
endif()
