//===- semantic_equivalence_test.cpp - Differential testing (E3) ----------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Experiment E3, translation-validation style: every optimization that
/// the checker proves sound must also *behave* soundly — for random
/// programs and inputs, whenever the original program returns a value,
/// the optimized program returns the same value (the paper's semantic
/// equivalence, §4). Stuck and diverging originals impose no obligation.
///
//===----------------------------------------------------------------------===//

#include "engine/PassManager.h"
#include "ir/Generator.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::engine;
using namespace cobalt::ir;

namespace {

/// Checks paper-§4 semantic equivalence on a handful of inputs.
void expectEquivalent(const Program &Original, Program &Optimized,
                      const std::string &What) {
  for (int64_t Input : {-9, -1, 0, 1, 2, 7, 50}) {
    Interpreter IO(Original), IT(Optimized);
    RunResult RO = IO.run(Input, /*Fuel=*/300000);
    if (!RO.returned())
      continue; // stuck/diverging originals impose no obligation
    RunResult RT = IT.run(Input, /*Fuel=*/600000);
    ASSERT_TRUE(RT.returned())
        << What << ": optimized program did not return on input " << Input
        << " (" << RT.str() << ")\noriginal:\n"
        << toString(Original) << "optimized:\n"
        << toString(Optimized);
    EXPECT_EQ(RO.Result, RT.Result)
        << What << ": wrong result on input " << Input << "\noriginal:\n"
        << toString(Original) << "optimized:\n"
        << toString(Optimized);
  }
}

struct EquivCase {
  GenOptions Options;
  const char *Name;
};

class SemanticEquivalence
    : public ::testing::TestWithParam<std::tuple<EquivCase, uint64_t>> {};

/// Each optimization applied alone to random programs.
TEST_P(SemanticEquivalence, EveryOptimizationAlone) {
  const auto &[Case, Seed] = GetParam();
  Program Original = generateProgram(Case.Options, Seed);

  for (const Optimization &O : opts::allOptimizations()) {
    PassManager PM;
    for (PureAnalysis &A : opts::allAnalyses())
      PM.addAnalysis(std::move(A));
    PM.addOptimization(O);
    Program Optimized = Original;
    PM.run(Optimized);
    ASSERT_EQ(validateProgram(Optimized), std::nullopt)
        << O.Name << "\n"
        << toString(Optimized);
    expectEquivalent(Original, Optimized, O.Name);
  }
}

/// The whole pipeline applied twice (fixpoint-ish) to random programs.
TEST_P(SemanticEquivalence, FullPipeline) {
  const auto &[Case, Seed] = GetParam();
  Program Original = generateProgram(Case.Options, Seed);

  PassManager PM;
  for (PureAnalysis &A : opts::allAnalyses())
    PM.addAnalysis(std::move(A));
  for (Optimization &O : opts::allOptimizations())
    PM.addOptimization(std::move(O));

  Program Optimized = Original;
  PM.run(Optimized);
  PM.run(Optimized);
  ASSERT_EQ(validateProgram(Optimized), std::nullopt)
      << toString(Optimized);
  expectEquivalent(Original, Optimized, "full pipeline x2");
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, SemanticEquivalence,
    ::testing::Combine(
        ::testing::Values(
            EquivCase{{.NumVars = 4, .NumStmts = 14}, "scalars"},
            EquivCase{{.NumVars = 4,
                       .NumStmts = 14,
                       .WithPointers = true},
                      "pointers"},
            EquivCase{{.NumVars = 3,
                       .NumStmts = 12,
                       .NumHelperProcs = 2,
                       .WithCalls = true},
                      "calls"},
            EquivCase{{.NumVars = 4,
                       .NumStmts = 16,
                       .NumHelperProcs = 1,
                       .WithPointers = true,
                       .WithCalls = true,
                       .WithDivision = true},
                      "everything"}),
        ::testing::Range<uint64_t>(0, 12)),
    [](const ::testing::TestParamInfo<std::tuple<EquivCase, uint64_t>>
           &Info) {
      return std::string(std::get<0>(Info.param).Name) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

/// Directed regressions: the paper's own examples end to end.
TEST(SemanticEquivalenceDirected, Section23PreFragment) {
  const char *Text = R"(
    proc main(n) {
      decl a;
      decl b;
      decl x;
      b := n;
      if n goto t else f;
    t:
      a := 1;
      x := a + b;
      if 1 goto join else join;
    f:
      skip;
    join:
      x := a + b;
      return x;
    }
  )";
  Program Original = parseProgramOrDie(Text);
  Program Optimized = parseProgramOrDie(Text);
  PassManager PM;
  PM.addOptimization(opts::preDuplicate());
  PM.addOptimization(opts::cse());
  PM.addOptimization(opts::selfAssignRemoval());
  PM.run(Optimized);
  expectEquivalent(Original, Optimized, "PRE pipeline");
}

TEST(SemanticEquivalenceDirected, EscapedLocalStaysCorrect) {
  // The B5 scenario: a helper whose local escapes by pointer. The
  // *shipped* DAE must not remove the store the caller later observes.
  const char *Text = R"(
    proc leak(v) {
      decl x;
      decl r;
      x := 5;
      r := &x;
      return r;
    }
    proc main(n) {
      decl q;
      decl out;
      q := leak(n);
      out := *q;
      return out;
    }
  )";
  Program Original = parseProgramOrDie(Text);
  Program Optimized = parseProgramOrDie(Text);
  PassManager PM;
  PM.addOptimization(opts::deadAssignElim());
  PM.run(Optimized);
  // x := 5 must survive: mayUse at `return r` is conservative.
  EXPECT_NE(toString(Optimized).find("x := 5"), std::string::npos)
      << toString(Optimized);
  expectEquivalent(Original, Optimized, "escaped-local DAE");

  // And for the record: the run observes 5 through the escaped pointer.
  Interpreter I(Original);
  RunResult R = I.run(0);
  ASSERT_TRUE(R.returned());
  EXPECT_EQ(R.Result, Value::intV(5));
}

} // namespace
