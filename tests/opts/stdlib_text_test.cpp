//===- stdlib_text_test.cpp - Textual stdlib ≡ builder definitions --------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Parses the textual standard library (StdlibCobalt.h) and requires it
/// to match the C++-builder definitions structurally: same guards, same
/// rewrite rules, same witnesses, same label bodies. Then proves a
/// sample of the *parsed* optimizations sound — demonstrating that the
/// whole pipeline (text → AST → obligations → Z3) is closed.
///
//===----------------------------------------------------------------------===//

#include "opts/StdlibCobalt.h"

#include "checker/Soundness.h"
#include "core/CobaltParser.h"
#include "ir/Printer.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

#include <map>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

class StdlibTextTest : public ::testing::Test {
protected:
  void SetUp() override {
    Module = parseCobaltOrDie(opts::StdlibCobaltSource);
    for (const Optimization &O : Module.Optimizations)
      ByName[O.Name] = &O;
  }

  void expectSamePattern(const Optimization &Built) {
    auto It = ByName.find(Built.Name);
    ASSERT_NE(It, ByName.end()) << Built.Name << " missing from stdlib.cob";
    const Optimization &Parsed = *It->second;
    EXPECT_EQ(Parsed.Pat.Dir, Built.Pat.Dir) << Built.Name;
    EXPECT_EQ(Parsed.Pat.From, Built.Pat.From) << Built.Name;
    EXPECT_EQ(Parsed.Pat.To, Built.Pat.To) << Built.Name;
    EXPECT_EQ(Parsed.Pat.G.Psi1->str(), Built.Pat.G.Psi1->str())
        << Built.Name;
    EXPECT_EQ(Parsed.Pat.G.Psi2->str(), Built.Pat.G.Psi2->str())
        << Built.Name;
    EXPECT_EQ(Parsed.Pat.W->str(), Built.Pat.W->str()) << Built.Name;
  }

  const LabelDef *parsedLabel(const std::string &Name) {
    for (const LabelDef &Def : Module.Labels)
      if (Def.Name == Name)
        return &Def;
    return nullptr;
  }

  CobaltModule Module;
  std::map<std::string, const Optimization *> ByName;
};

TEST_F(StdlibTextTest, OptimizationsMatchBuilderVersions) {
  expectSamePattern(opts::constProp());
  expectSamePattern(opts::copyProp());
  expectSamePattern(opts::cse());
  expectSamePattern(opts::branchFold());
  expectSamePattern(opts::branchTaken());
  expectSamePattern(opts::deadAssignElim());
  expectSamePattern(opts::selfAssignRemoval());
  expectSamePattern(opts::preDuplicate());
}

TEST_F(StdlibTextTest, LabelsMatchBuilderVersions) {
  struct Pair {
    LabelDef Built;
    const char *Name;
  };
  std::vector<Pair> Pairs;
  Pairs.push_back({opts::syntacticDefLabel(), "syntacticDef"});
  Pairs.push_back({opts::exprUsesLabel(), "exprUses"});
  Pairs.push_back({opts::mayDefLabel(), "mayDef"});
  Pairs.push_back({opts::mayUseLabel(), "mayUse"});
  Pairs.push_back({opts::unchangedLabel(), "unchanged"});
  for (const Pair &P : Pairs) {
    const LabelDef *Parsed = parsedLabel(P.Name);
    ASSERT_NE(Parsed, nullptr) << P.Name;
    ASSERT_EQ(Parsed->Params.size(), P.Built.Params.size()) << P.Name;
    for (size_t I = 0; I < Parsed->Params.size(); ++I) {
      EXPECT_EQ(Parsed->Params[I].first, P.Built.Params[I].first) << P.Name;
      EXPECT_EQ(Parsed->Params[I].second, P.Built.Params[I].second)
          << P.Name;
    }
    EXPECT_EQ(Parsed->Body->str(), P.Built.Body->str()) << P.Name;
  }
}

TEST_F(StdlibTextTest, AnalysisMatches) {
  ASSERT_EQ(Module.Analyses.size(), 1u);
  PureAnalysis Built = opts::taintAnalysis();
  const PureAnalysis &Parsed = Module.Analyses[0];
  EXPECT_EQ(Parsed.LabelName, Built.LabelName);
  EXPECT_EQ(Parsed.G.Psi1->str(), Built.G.Psi1->str());
  EXPECT_EQ(Parsed.G.Psi2->str(), Built.G.Psi2->str());
  EXPECT_EQ(Parsed.W->str(), Built.W->str());
}

TEST_F(StdlibTextTest, ParsedDefinitionsProveSound) {
  // The pipeline is closed: optimizations parsed from text go through
  // the same checker and come out proven.
  LabelRegistry Registry;
  for (const LabelDef &Def : Module.Labels)
    Registry.define(Def);
  Registry.declareAnalysisLabel("notTainted");
  checker::SoundnessChecker SC(Registry, Module.Analyses);

  for (const char *Name : {"const_prop", "dead_assign_elim"}) {
    const Optimization &O = *ByName.at(Name);
    checker::CheckReport R = SC.checkOptimization(O);
    EXPECT_TRUE(R.Sound) << R.str();
  }
  checker::CheckReport RA = SC.checkAnalysis(Module.Analyses[0]);
  EXPECT_TRUE(RA.Sound) << RA.str();
}

} // namespace
