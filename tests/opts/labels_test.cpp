//===- labels_test.cpp - The standard label library -----------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//

#include "opts/Labels.h"

#include "core/Builder.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace cobalt;
using namespace cobalt::ir;

namespace {

/// Evaluates label(args...) against a one-statement context.
class LabelsTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (const LabelDef &Def : opts::standardLabels())
      Registry.define(Def);
    Registry.declareAnalysisLabel("notTainted");
  }

  /// Builds a tiny procedure whose node 0 is \p StmtText and evaluates
  /// the label there under \p Theta.
  bool holds(const std::string &LabelName, const Substitution &Theta,
             const std::string &StmtText,
             const Labeling *Labels = nullptr) {
    Proc.Name = "p";
    Proc.Param = "arg";
    Proc.Stmts = {parseStmtPatternOrDie(StmtText),
                  Stmt(ReturnStmt{Var::concrete("arg")})};
    Univ = buildUniverse(Proc);
    NodeContext Ctx{&Proc, 0, &Registry, Labels, &Univ};
    std::vector<Term> Args;
    const LabelDef *Def = Registry.findPredicate(LabelName);
    for (const auto &[Name, Kind] : Def->Params) {
      (void)Kind;
      // Look the arg up in Theta by the label's own param order: tests
      // bind E/X/P names directly.
      Args.push_back(tExpr(Name));
    }
    auto R = evalFormula(*fLabel(LabelName, Args), Ctx, Theta);
    EXPECT_TRUE(R.has_value()) << LabelName << " at " << StmtText;
    return R.has_value() && *R;
  }

  Substitution varBinding(const char *Name, const char *Value) {
    Substitution Theta;
    Theta.bind(Name, Binding::var(Value));
    return Theta;
  }

  LabelRegistry Registry;
  Procedure Proc;
  Universe Univ;
};

TEST_F(LabelsTest, SyntacticDef) {
  Substitution X = varBinding("X", "a");
  EXPECT_TRUE(holds("syntacticDef", X, "decl a"));
  EXPECT_TRUE(holds("syntacticDef", X, "a := 1"));
  EXPECT_TRUE(holds("syntacticDef", X, "a := new"));
  EXPECT_FALSE(holds("syntacticDef", X, "b := 1"));
  EXPECT_FALSE(holds("syntacticDef", X, "*a := 1")); // store, not def of a
  EXPECT_FALSE(holds("syntacticDef", X, "skip"));
  EXPECT_FALSE(holds("syntacticDef", X, "return a"));
}

TEST_F(LabelsTest, MayDefConservative) {
  Substitution X = varBinding("X", "a");
  // Pointer stores and calls may define anything — even with constant
  // arguments (a bug our checker caught in an earlier version).
  EXPECT_TRUE(holds("mayDef", X, "*p := 1"));
  EXPECT_TRUE(holds("mayDef", X, "b := f(c)"));
  EXPECT_TRUE(holds("mayDef", X, "b := f(3)"));
  EXPECT_TRUE(holds("mayDef", X, "a := 2"));
  EXPECT_FALSE(holds("mayDef", X, "b := 2"));
  EXPECT_FALSE(holds("mayDef", X, "skip"));
}

TEST_F(LabelsTest, ExprUses) {
  auto Uses = [&](const char *ExprText, const char *Of) {
    Substitution Theta;
    Theta.bind("E", Binding::expr(parseExprPatternOrDie(ExprText)));
    Theta.bind("X", Binding::var(Of));
    return holds("exprUses", Theta, "skip");
  };
  EXPECT_TRUE(Uses("a", "a"));
  EXPECT_FALSE(Uses("b", "a"));
  EXPECT_FALSE(Uses("3", "a"));
  EXPECT_TRUE(Uses("a + b", "a"));
  EXPECT_TRUE(Uses("b + a", "a"));
  EXPECT_FALSE(Uses("b + c", "a"));
  EXPECT_TRUE(Uses("b + 1", "b"));
  EXPECT_TRUE(Uses("*a", "a"));
  EXPECT_TRUE(Uses("*p", "a")); // conservative: any load may read a
  EXPECT_FALSE(Uses("&b", "a"));
}

TEST_F(LabelsTest, MayUseConservative) {
  Substitution X = varBinding("X", "a");
  EXPECT_TRUE(holds("mayUse", X, "b := a"));
  EXPECT_TRUE(holds("mayUse", X, "b := a + 1"));
  EXPECT_FALSE(holds("mayUse", X, "b := c"));
  EXPECT_TRUE(holds("mayUse", X, "*p := a"));
  EXPECT_TRUE(holds("mayUse", X, "*a := 1"));
  EXPECT_TRUE(holds("mayUse", X, "if a goto 0 else 0"));
  EXPECT_FALSE(holds("mayUse", X, "if b goto 0 else 0"));
  // Returns conservatively use everything (escaped locals).
  EXPECT_TRUE(holds("mayUse", X, "return b"));
  EXPECT_TRUE(holds("mayUse", X, "b := f(1)"));
  EXPECT_FALSE(holds("mayUse", X, "decl b"));
  EXPECT_FALSE(holds("mayUse", X, "b := new"));
}

TEST_F(LabelsTest, Unchanged) {
  auto Unchanged = [&](const char *ExprText, const char *StmtText) {
    Substitution Theta;
    Theta.bind("E", Binding::expr(parseExprPatternOrDie(ExprText)));
    return holds("unchanged", Theta, StmtText);
  };
  EXPECT_TRUE(Unchanged("3", "a := 1"));
  EXPECT_TRUE(Unchanged("a + b", "c := 1"));
  EXPECT_FALSE(Unchanged("a + b", "a := 1"));
  EXPECT_FALSE(Unchanged("a + b", "*p := 1"));
  EXPECT_FALSE(Unchanged("a + b", "c := f(1)"));
  EXPECT_FALSE(Unchanged("*p", "skip")); // loads are never "unchanged"
  EXPECT_TRUE(Unchanged("&a", "a := 1")); // the address survives writes
  EXPECT_FALSE(Unchanged("&a", "decl a")); // but not re-declaration
}

TEST_F(LabelsTest, DerefUnchangedNeedsTaintInfo) {
  Substitution P = varBinding("P", "p");
  // Without a labeling, notTainted is never derivable: assignments and
  // news are conservatively rejected.
  EXPECT_FALSE(holds("derefUnchanged", P, "a := 1"));
  EXPECT_FALSE(holds("derefUnchanged", P, "a := new"));
  EXPECT_TRUE(holds("derefUnchanged", P, "skip"));
  EXPECT_TRUE(holds("derefUnchanged", P, "if a goto 0 else 0"));
  EXPECT_FALSE(holds("derefUnchanged", P, "*q := 1"));
  EXPECT_FALSE(holds("derefUnchanged", P, "a := f(1)"));

  // With notTainted(a) at the node, a := 1 preserves *p.
  Labeling Labels(2);
  Labels[0].insert(GroundLabel{"notTainted", {Binding::var("a")}});
  EXPECT_TRUE(holds("derefUnchanged", P, "a := 1", &Labels));
  // But assigning to p itself never does.
  EXPECT_FALSE(holds("derefUnchanged", P, "p := 1", &Labels));
}

TEST_F(LabelsTest, PreciseVariantsConsultTaintLabels) {
  Substitution X = varBinding("X", "a");
  Labeling Labels(2);
  Labels[0].insert(GroundLabel{"notTainted", {Binding::var("a")}});

  // Precise mayDef: the pointer store cannot touch untainted a.
  Proc.Stmts.clear();
  EXPECT_FALSE(holds("mayDefPrecise", X, "*p := 1", &Labels));
  EXPECT_TRUE(holds("mayDefPrecise", X, "*p := 1")); // no labels: may
  EXPECT_TRUE(holds("mayDefPrecise", X, "a := f(1)", &Labels)); // target
  EXPECT_FALSE(holds("mayDefPrecise", X, "b := f(1)", &Labels));
}

} // namespace
