//===- daemon_test.cpp - cobaltd's server loop over AF_UNIX ---------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon half of verification-as-a-service, driven in-process: N
/// concurrent clients asking for the same suite receive byte-identical
/// reports while the service proves each obligation exactly once (the
/// dedup counters testify); pipelined frames are answered in order;
/// malformed frames get error responses instead of killing the
/// connection; and a client "shutdown" stops the daemon cleanly.
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Protocol.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cobalt;
using support::ScopedFaultPlan;
namespace faults = cobalt::support::faults;

namespace {

std::shared_ptr<api::CobaltService> makeService(unsigned MaxInFlight = 0) {
  api::CobaltConfig Config;
  Config.Telemetry = true;
  Config.MaxInFlightObligations = MaxInFlight;
  api::CobaltService::Builder B;
  B.config(Config);
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  B.addOptimization(opts::constProp());
  B.addOptimization(opts::cse());
  return B.build();
}

std::string socketPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "/cobaltd_" + Tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

uint64_t statsCounter(const std::string &StatsResponse, const char *Name) {
  std::optional<service::JsonValue> Doc =
      service::parseJson(StatsResponse);
  if (!Doc)
    return 0;
  const service::JsonValue *Metrics = Doc->find("metrics");
  const service::JsonValue *Counters =
      Metrics ? Metrics->find("counters") : nullptr;
  const service::JsonValue *C = Counters ? Counters->find(Name) : nullptr;
  return C ? C->asU64() : 0;
}

TEST(Daemon, PingAndStats) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("ping"));
  ASSERT_FALSE(D.start().failed());
  ASSERT_TRUE(D.running());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());
  support::Expected<std::string> Ping =
      C.request(service::makePingRequest(), 10000);
  ASSERT_TRUE(Ping.ok());
  std::optional<service::JsonValue> Doc = service::parseJson(*Ping);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("status")->asString(), "ok");
  EXPECT_EQ(Doc->find("protocol")->asI64(), service::ProtocolVersion);
  EXPECT_EQ(Doc->find("definitions")->asI64(), 2);

  support::Expected<std::string> Stats =
      C.request(service::makeStatsRequest(), 10000);
  ASSERT_TRUE(Stats.ok());
  std::optional<service::JsonValue> SDoc = service::parseJson(*Stats);
  ASSERT_TRUE(SDoc.has_value());
  EXPECT_EQ(SDoc->find("status")->asString(), "ok");
  D.stop();
  EXPECT_FALSE(D.running());
}

TEST(Daemon, ConcurrentClientsByteIdenticalAndProvedOnce) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("dedup"));
  ASSERT_FALSE(D.start().failed());
  // Keep the leader in flight long enough that the other clients
  // genuinely overlap (become waiters, not fresh memo readers).
  ScopedFaultPlan Plan(std::string(faults::CheckerProverStallMs) + "=20");

  constexpr unsigned Clients = 4;
  std::vector<std::string> Responses(Clients);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      service::Client C;
      if (C.connect(D.socketPath()).failed())
        return;
      support::Expected<std::string> R =
          C.request(service::makeCheckRequest({}), /*DeadlineMs=*/0);
      if (R)
        Responses[I] = std::move(*R);
    });
  for (std::thread &T : Threads)
    T.join();

  ASSERT_FALSE(Responses[0].empty());
  for (unsigned I = 1; I < Clients; ++I)
    EXPECT_EQ(Responses[I], Responses[0]) << "client " << I << " diverged";
  std::optional<service::JsonValue> Doc =
      service::parseJson(Responses[0]);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("status")->asString(), "ok");
  EXPECT_EQ(Doc->find("exit")->asI64(), 0);

  if (support::telemetryCompiledIn()) {
    service::Client C;
    ASSERT_FALSE(C.connect(D.socketPath()).failed());
    support::Expected<std::string> Stats =
        C.request(service::makeStatsRequest(), 10000);
    ASSERT_TRUE(Stats.ok());
    // The suite has 30 obligations (15 per optimization); 4 concurrent
    // full-suite requests must prove each exactly once.
    uint64_t Proved = statsCounter(*Stats, "checker.obligations");
    uint64_t PerSuite = 0;
    const service::JsonValue *Defs = Doc->find("definitions");
    ASSERT_NE(Defs, nullptr);
    for (const service::JsonValue &Def : Defs->Items)
      PerSuite += Def.find("obligations")->Items.size();
    EXPECT_EQ(Proved, PerSuite);
    // The other three clients' suites came from the memo.
    EXPECT_GE(statsCounter(*Stats, "service.dedup.served"),
              (Clients - 1) * 2u);
  }
  D.stop();
}

TEST(Daemon, PipelinedFramesAnsweredInOrder) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("pipeline"));
  ASSERT_FALSE(D.start().failed());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());
  std::vector<std::string> Batch = {
      service::makePingRequest(),
      service::makeCheckRequest({"const_prop"}),
      service::makeStatsRequest(),
  };
  support::Expected<std::vector<std::string>> R =
      C.requestMany(Batch, /*DeadlineMs=*/0);
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R->size(), 3u);
  EXPECT_NE((*R)[0].find("\"protocol\""), std::string::npos);
  EXPECT_NE((*R)[1].find("\"definitions\""), std::string::npos);
  EXPECT_NE((*R)[2].find("\"cache_hits\""), std::string::npos);
  D.stop();
}

TEST(Daemon, RunRequest) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("run"));
  ASSERT_FALSE(D.start().failed());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());
  support::Expected<std::string> R = C.request(
      service::makeRunRequest(
          "proc main(n) {\n  x := 3;\n  y := x;\n  return y;\n}\n", {},
          /*SelectedOnly=*/false),
      /*DeadlineMs=*/0);
  ASSERT_TRUE(R.ok());
  std::optional<service::JsonValue> Doc = service::parseJson(*R);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("status")->asString(), "ok");
  EXPECT_EQ(Doc->find("exit")->asI64(), 0);
  EXPECT_NE(Doc->find("optimized_il"), nullptr);

  // An unparseable program is a request error, not a dead connection.
  support::Expected<std::string> Bad = C.request(
      service::makeRunRequest("proc {", {}, false), /*DeadlineMs=*/0);
  ASSERT_TRUE(Bad.ok());
  std::optional<service::JsonValue> BadDoc = service::parseJson(*Bad);
  ASSERT_TRUE(BadDoc.has_value());
  EXPECT_EQ(BadDoc->find("status")->asString(), "error");
  D.stop();
}

TEST(Daemon, MalformedFramesGetErrorResponses) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("malformed"));
  ASSERT_FALSE(D.start().failed());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());
  const char *Bad[] = {"not json", "{\"cmd\": \"frobnicate\"}", "{}"};
  for (const char *Payload : Bad) {
    support::Expected<std::string> R =
        C.request(Payload, /*DeadlineMs=*/10000);
    ASSERT_TRUE(R.ok()) << Payload;
    std::optional<service::JsonValue> Doc = service::parseJson(*R);
    ASSERT_TRUE(Doc.has_value()) << Payload;
    EXPECT_EQ(Doc->find("status")->asString(), "error") << Payload;
  }
  // The connection survived all three: a good frame still works.
  support::Expected<std::string> Ping =
      C.request(service::makePingRequest(), 10000);
  ASSERT_TRUE(Ping.ok());
  D.stop();
}

TEST(Daemon, ShutdownCommandStopsTheDaemon) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("shutdown"));
  ASSERT_FALSE(D.start().failed());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());
  support::Expected<std::string> R =
      C.request(service::makeShutdownRequest(), 10000);
  ASSERT_TRUE(R.ok());
  EXPECT_NE(R->find("\"stopping\": true"), std::string::npos);
  D.wait(); // returns because the command flagged the stop
  D.stop();
  EXPECT_FALSE(D.running());
  // The socket file is gone: a fresh connect must fail.
  service::Client C2;
  EXPECT_TRUE(C2.connect(D.socketPath()).failed());
}

TEST(Daemon, DoubleStartFails) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("double"));
  ASSERT_FALSE(D.start().failed());
  EXPECT_TRUE(D.start().failed());
  D.stop();
}

} // namespace
