//===- daemon_cli_test.cpp - cobaltd/cobaltc client process contract ------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon start/stop smoke test at the process level, in the default
/// ctest run: a real cobaltd prints its readiness line, answers a real
/// `cobaltc client`, shuts down cleanly on SIGTERM (exit 0), and client
/// mode maps an unreachable daemon to the documented exit code 5 — never
/// to a verdict.
///
/// COBALTD_BIN / COBALTC_BIN are compile definitions pointing at the
/// built tools.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

namespace {

std::string socketPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "/cobaltd_cli_" + Tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Runs a command line, captures stdout, returns the exit code (-1 on
/// spawn failure, 128+sig on death by signal).
int runCommand(const std::string &Cmd, std::string &Out) {
  Out.clear();
  std::FILE *P = ::popen(Cmd.c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = ::pclose(P);
  if (WIFEXITED(Status))
    return WEXITSTATUS(Status);
  if (WIFSIGNALED(Status))
    return 128 + WTERMSIG(Status);
  return -1;
}

/// Spawns cobaltd on \p Socket with the bundled module, returns its pid
/// after the readiness line has appeared on its stdout (so the socket is
/// accepting). Returns -1 on failure.
pid_t spawnDaemon(const std::string &Socket, int &OutFd) {
  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return -1;
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    return -1;
  }
  if (Pid == 0) {
    ::dup2(Pipe[1], STDOUT_FILENO);
    ::close(Pipe[0]);
    ::close(Pipe[1]);
    ::execl(COBALTD_BIN, COBALTD_BIN, "stdlib", "--socket",
            Socket.c_str(), static_cast<char *>(nullptr));
    _exit(127);
  }
  ::close(Pipe[1]);
  // Wait for the readiness line (one read suffices: the daemon flushes
  // it as a unit).
  std::string Seen;
  char Buf[256];
  while (Seen.find("listening on") == std::string::npos) {
    ssize_t N = ::read(Pipe[0], Buf, sizeof(Buf));
    if (N <= 0) {
      ::close(Pipe[0]);
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
      return -1;
    }
    Seen.append(Buf, static_cast<size_t>(N));
  }
  OutFd = Pipe[0];
  return Pid;
}

TEST(DaemonCli, StartServeSigtermStop) {
  std::string Socket = socketPath("smoke");
  int OutFd = -1;
  pid_t Pid = spawnDaemon(Socket, OutFd);
  ASSERT_GT(Pid, 0) << "cobaltd failed to start";

  // A real client round-trip through the real binary.
  std::string Out;
  int Exit = runCommand(std::string(COBALTC_BIN) +
                            " client ping --socket " + Socket,
                        Out);
  EXPECT_EQ(Exit, 0) << Out;
  EXPECT_NE(Out.find("\"status\": \"ok\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"definitions\": 9"), std::string::npos) << Out;

  // SIGTERM → clean shutdown, exit 0.
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  ::close(OutFd);

  // The daemon removed its socket on the way out.
  EXPECT_NE(::access(Socket.c_str(), F_OK), 0);
}

TEST(DaemonCli, ClientShutdownCommand) {
  std::string Socket = socketPath("shutdown");
  int OutFd = -1;
  pid_t Pid = spawnDaemon(Socket, OutFd);
  ASSERT_GT(Pid, 0) << "cobaltd failed to start";

  std::string Out;
  int Exit = runCommand(std::string(COBALTC_BIN) +
                            " client shutdown --socket " + Socket,
                        Out);
  EXPECT_EQ(Exit, 0) << Out;

  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  ::close(OutFd);
}

TEST(DaemonCli, UnreachableDaemonIsExit5) {
  std::string Out;
  int Exit = runCommand(std::string(COBALTC_BIN) +
                            " client ping --socket " +
                            socketPath("nosuch") + " 2>&1",
                        Out);
  EXPECT_EQ(Exit, 5) << Out;
  EXPECT_NE(Out.find("is the daemon running?"), std::string::npos) << Out;
}

TEST(DaemonCli, UsageErrorsAreExit2) {
  std::string Out;
  // Client mode without --socket.
  EXPECT_EQ(runCommand(std::string(COBALTC_BIN) + " client ping 2>&1",
                       Out),
            2);
  // A daemon-only flag rejected by cobaltc's flag sets.
  EXPECT_EQ(runCommand(std::string(COBALTC_BIN) +
                           " check /dev/null --max-inflight 4 2>&1",
                       Out),
            2);
  EXPECT_NE(Out.find("not accepted by this tool"), std::string::npos)
      << Out;
  // cobaltd without a socket.
  EXPECT_EQ(runCommand(std::string(COBALTD_BIN) + " stdlib 2>&1", Out),
            2);
}

} // namespace
