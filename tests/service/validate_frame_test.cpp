//===- validate_frame_test.cpp - The daemon's validate frame --------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "validate" wire command end to end: a round-trip through a live
/// in-process daemon returns the serialized validation report with the
/// server-computed exit code; malformed frames (missing programs,
/// unparseable IL) get error responses instead of killing the
/// connection; and concurrent clients sending the identical pair are
/// deduplicated — one prover run, every client the same bytes.
///
//===----------------------------------------------------------------------===//

#include "api/Service.h"
#include "opts/Labels.h"
#include "service/Client.h"
#include "service/Daemon.h"
#include "service/Protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace cobalt;

namespace {

std::shared_ptr<api::CobaltService> makeService() {
  api::CobaltConfig Config;
  Config.Telemetry = true;
  api::CobaltService::Builder B;
  B.config(Config);
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  return B.build();
}

std::string socketPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "/cobaltd_v_" + Tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

const char *Orig = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + n;
  return y;
}
)";
const char *Renamed = R"(
proc main(n) {
  decl a;
  decl b;
  a := 3;
  b := a + n;
  return b;
}
)";
const char *Wrong = R"(
proc main(n) {
  decl x;
  decl y;
  x := 3;
  y := x + x;
  return y;
}
)";

TEST(ValidateFrame, RoundTripCarriesVerdictAndExit) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("roundtrip"));
  ASSERT_FALSE(D.start().failed());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());

  support::Expected<std::string> Eq =
      C.request(service::makeValidateRequest(Orig, Renamed), 60000);
  ASSERT_TRUE(Eq.ok());
  std::optional<service::JsonValue> Doc = service::parseJson(*Eq);
  ASSERT_TRUE(Doc.has_value()) << *Eq;
  EXPECT_EQ(Doc->find("status")->asString(), "ok");
  const service::JsonValue *Val = Doc->find("validation");
  ASSERT_NE(Val, nullptr) << *Eq;
  EXPECT_EQ(Val->find("verdict")->asString(), "Equivalent");
  EXPECT_EQ(Doc->find("exit")->asI64(), 0);

  support::Expected<std::string> Ne =
      C.request(service::makeValidateRequest(Orig, Wrong), 60000);
  ASSERT_TRUE(Ne.ok());
  Doc = service::parseJson(*Ne);
  ASSERT_TRUE(Doc.has_value()) << *Ne;
  const service::JsonValue *NVal = Doc->find("validation");
  ASSERT_NE(NVal, nullptr) << *Ne;
  EXPECT_EQ(NVal->find("verdict")->asString(), "Inequivalent");
  ASSERT_NE(NVal->find("witness"), nullptr) << *Ne;
  EXPECT_EQ(Doc->find("exit")->asI64(), 1);

  D.stop();
}

TEST(ValidateFrame, MalformedFramesAreRejectedNotFatal) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("malformed"));
  ASSERT_FALSE(D.start().failed());

  service::Client C;
  ASSERT_FALSE(C.connect(D.socketPath()).failed());

  // Missing candidate member.
  support::Expected<std::string> R = C.request(
      "{\"cmd\": \"validate\", \"original\": \"proc main(n) { return n; "
      "}\"}",
      10000);
  ASSERT_TRUE(R.ok());
  std::optional<service::JsonValue> Doc = service::parseJson(*R);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("status")->asString(), "error");

  // Unparseable candidate IL; the error names the failing side.
  R = C.request(service::makeValidateRequest(
                    "proc main(n) { return n; }", "this is not IL"),
                10000);
  ASSERT_TRUE(R.ok());
  Doc = service::parseJson(*R);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("status")->asString(), "error");
  EXPECT_NE(Doc->find("reason")->asString().find("candidate"),
            std::string::npos)
      << *R;

  // The connection survives: a well-formed frame still succeeds.
  R = C.request(service::makeValidateRequest(Orig, Renamed), 60000);
  ASSERT_TRUE(R.ok());
  Doc = service::parseJson(*R);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("status")->asString(), "ok");

  D.stop();
}

TEST(ValidateFrame, ConcurrentIdenticalPairsAreDeduplicated) {
  std::shared_ptr<api::CobaltService> Svc = makeService();
  service::Daemon D(Svc, socketPath("dedup"));
  ASSERT_FALSE(D.start().failed());

  constexpr int N = 4;
  std::vector<std::string> Responses(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&, I] {
      service::Client C;
      ASSERT_FALSE(C.connect(D.socketPath()).failed());
      support::Expected<std::string> R =
          C.request(service::makeValidateRequest(Orig, Renamed), 60000);
      ASSERT_TRUE(R.ok());
      Responses[I] = *R;
    });
  for (std::thread &T : Threads)
    T.join();

  // One serializer, one leader: byte-identical responses for everyone.
  for (int I = 1; I < N; ++I)
    EXPECT_EQ(Responses[0], Responses[I]);
  EXPECT_GE(Svc->cacheHits(), static_cast<unsigned>(N - 1));

  D.stop();
}

} // namespace
