//===- service_api_test.cpp - CobaltService request semantics -------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immutable service half of the API redesign (DESIGN.md §13):
/// request resolution, per-request overrides, obligation-level dedup
/// across concurrent callers (prove once, serve everyone), admission
/// control's Retry contract, the Unproven memo-eviction rule, and the
/// two-tier verdict cache's mem-vs-disk counters.
///
//===----------------------------------------------------------------------===//

#include "api/Cobalt.h"
#include "api/Service.h"
#include "opts/Labels.h"
#include "opts/Optimizations.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace cobalt;
using namespace cobalt::api;
using support::ScopedFaultPlan;
namespace faults = cobalt::support::faults;
namespace fs = std::filesystem;

namespace {

fs::path scratchDir(const std::string &Name) {
  fs::path Dir = fs::path(::testing::TempDir()) / ("cobalt_svc_" + Name);
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir;
}

/// A small two-optimization service; \p Config is applied as given.
std::shared_ptr<CobaltService> makeService(CobaltConfig Config) {
  CobaltService::Builder B;
  B.config(std::move(Config));
  for (const LabelDef &Def : opts::standardLabels())
    B.defineLabel(Def);
  B.addOptimization(opts::constProp());
  B.addOptimization(opts::cse());
  return B.build();
}

uint64_t counter(CobaltService &Svc, const char *Name) {
  return Svc.telemetry() ? Svc.telemetry()->Metrics.counter(Name) : 0;
}

TEST(ServiceApi, CheckAllRegistered) {
  std::shared_ptr<CobaltService> Svc = makeService(CobaltConfig{});
  CheckResponse Resp = Svc->check(CheckRequest{});
  ASSERT_TRUE(Resp.ok());
  ASSERT_EQ(Resp.Suite.Reports.size(), 2u);
  EXPECT_TRUE(Resp.Suite.allSound());
  EXPECT_EQ(Resp.Suite.Reports[0].Name, "const_prop");
  EXPECT_EQ(Resp.Suite.Reports[1].Name, "cse");
  EXPECT_EQ(CobaltService::exitCodeFor(Resp.Suite, false), 0);
}

TEST(ServiceApi, OnlySubsetAndOrder) {
  std::shared_ptr<CobaltService> Svc = makeService(CobaltConfig{});
  // Registration order wins over request order: responses stay
  // deterministic no matter how the client spelled the subset.
  CheckRequest Req;
  Req.Only = {"cse", "const_prop"};
  CheckResponse Resp = Svc->check(Req);
  ASSERT_TRUE(Resp.ok());
  ASSERT_EQ(Resp.Suite.Reports.size(), 2u);
  EXPECT_EQ(Resp.Suite.Reports[0].Name, "const_prop");
  EXPECT_EQ(Resp.Suite.Reports[1].Name, "cse");
}

TEST(ServiceApi, UnknownDefinitionIsError) {
  std::shared_ptr<CobaltService> Svc = makeService(CobaltConfig{});
  CheckRequest Req;
  Req.Only = {"licm"};
  CheckResponse Resp = Svc->check(Req);
  ASSERT_EQ(Resp.Status, ResponseStatus::RS_Error);
  EXPECT_EQ(Resp.Err.Kind, support::ErrorKind::EK_Unavailable);
  EXPECT_NE(Resp.Err.Message.find("licm"), std::string::npos);
  EXPECT_TRUE(Resp.Suite.Reports.empty());
}

TEST(ServiceApi, MemoServesRepeatCheaply) {
  CobaltConfig Config;
  Config.Telemetry = true;
  std::shared_ptr<CobaltService> Svc = makeService(Config);
  CheckResponse First = Svc->check(CheckRequest{});
  ASSERT_TRUE(First.ok());
  unsigned HitsAfterFirst = Svc->cacheHits();
  CheckResponse Second = Svc->check(CheckRequest{});
  ASSERT_TRUE(Second.ok());
  // Both definitions were served from the in-flight memo, not re-proven.
  EXPECT_GE(Svc->cacheHits(), HitsAfterFirst + 2);
  if (support::telemetryCompiledIn())
    EXPECT_GE(counter(*Svc, "service.dedup.served"), 2u);
  // Served and proven reports must say the same thing.
  ASSERT_EQ(First.Suite.Reports.size(), Second.Suite.Reports.size());
  for (size_t I = 0; I < First.Suite.Reports.size(); ++I) {
    EXPECT_EQ(First.Suite.Reports[I].Name, Second.Suite.Reports[I].Name);
    EXPECT_EQ(First.Suite.Reports[I].Sound,
              Second.Suite.Reports[I].Sound);
  }
}

TEST(ServiceApi, ConcurrentRequestsProveOnce) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "needs metrics to count provings";
  CobaltConfig Config;
  Config.Telemetry = true;
  std::shared_ptr<CobaltService> Svc = makeService(Config);
  // The stall keeps the leader in flight long enough for the other
  // threads to become waiters on the shared future.
  ScopedFaultPlan Plan(std::string(faults::CheckerProverStallMs) + "=20");
  // Concurrent in-process callers install per-request TelemetryScopes;
  // holding the service's session ambient for the whole test makes
  // their nested scopes value-idempotent (the daemon does the same).
  support::TelemetryScope Outer(Svc->telemetry());

  constexpr unsigned Threads = 4;
  std::vector<std::thread> Workers;
  std::atomic<unsigned> SoundSuites{0};
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([&] {
      CheckResponse R = Svc->check(CheckRequest{});
      if (R.ok() && R.Suite.allSound())
        SoundSuites.fetch_add(1);
    });
  for (std::thread &T : Workers)
    T.join();

  EXPECT_EQ(SoundSuites.load(), Threads);
  uint64_t Obligations = counter(*Svc, "checker.obligations");
  // One proving of the two-definition suite — not Threads provings.
  CheckResponse Single = Svc->check(CheckRequest{});
  uint64_t PerSuite = 0;
  for (const checker::CheckReport &R : Single.Suite.Reports)
    PerSuite += R.Obligations.size();
  EXPECT_EQ(Obligations, PerSuite);
  EXPECT_GE(counter(*Svc, "service.dedup.served"),
            (Threads - 1) * Single.Suite.Reports.size());
}

TEST(ServiceApi, AdmissionControlRetries) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "uses the stall fault's timing";
  CobaltConfig Config;
  Config.Telemetry = true;
  Config.MaxInFlightObligations = 1;
  std::shared_ptr<CobaltService> Svc = makeService(Config);
  ScopedFaultPlan Plan(std::string(faults::CheckerProverStallMs) + "=30");
  support::TelemetryScope Outer(Svc->telemetry());

  // Leader: proves const_prop slowly. An idle service always admits —
  // the bound only rejects when someone else is already proving.
  std::thread Leader([&] {
    CheckRequest Req;
    Req.Only = {"const_prop"};
    CheckResponse R = Svc->check(Req);
    EXPECT_TRUE(R.ok());
  });
  // Competitor: a *different* definition while the leader is in flight
  // must bounce with Retry (no partial effects), not queue.
  bool SawRetry = false;
  for (int Attempt = 0; Attempt < 100 && !SawRetry; ++Attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    CheckRequest Req;
    Req.Only = {"cse"};
    CheckResponse R = Svc->check(Req);
    if (R.retry()) {
      SawRetry = true;
      EXPECT_FALSE(R.Err.Message.empty());
    } else if (R.ok()) {
      break; // leader already finished; nothing left to bounce off
    }
  }
  Leader.join();
  EXPECT_TRUE(SawRetry);
  EXPECT_GE(counter(*Svc, "service.admission.rejected"), 1u);

  // After the storm passes, the same request is admitted and proves.
  CheckRequest Req;
  Req.Only = {"cse"};
  CheckResponse R = Svc->check(Req);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Suite.allSound());
}

TEST(ServiceApi, BudgetOverrideAndUnprovenEviction) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "uses the stall fault's timing";
  CobaltConfig Config;
  Config.Telemetry = true;
  std::shared_ptr<CobaltService> Svc = makeService(Config);
  support::TelemetryScope Outer(Svc->telemetry());

  // A starvation budget + stalled prover forces Unproven.
  {
    ScopedFaultPlan Plan(std::string(faults::CheckerProverStallMs) +
                         "=50");
    CheckRequest Req;
    Req.Only = {"const_prop"};
    Req.BudgetMs = 1;
    CheckResponse R = Svc->check(Req);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.Suite.Unproven, 1u);
    EXPECT_EQ(CobaltService::exitCodeFor(R.Suite, false), 3);
  }
  // Unproven is never memoized: with the fault gone and the budget back
  // to policy, the same definition must be re-proven and come up sound.
  CheckRequest Req;
  Req.Only = {"const_prop"};
  CheckResponse R = Svc->check(Req);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Suite.allSound());
}

TEST(ServiceApi, MemVsDiskCacheCounters) {
  if (!support::telemetryCompiledIn())
    GTEST_SKIP() << "counters compiled out";
  fs::path Dir = scratchDir("two_tier");

  CobaltConfig Config;
  Config.Telemetry = true;
  Config.CacheDir = Dir.string();

  // Service 1, first proving: both tiers miss, both tiers store.
  {
    std::shared_ptr<CobaltService> Svc = makeService(Config);
    support::TelemetryScope Outer(Svc->telemetry());
    CheckRequest Req;
    Req.Only = {"const_prop"};
    ASSERT_TRUE(Svc->check(Req).ok());
    EXPECT_GE(counter(*Svc, "cache.mem.misses"), 1u);
    EXPECT_GE(counter(*Svc, "cache.disk.stores"), 1u);
    EXPECT_EQ(counter(*Svc, "cache.mem.hits"), 0u);

    // Same service, compat prover path: the hot tier answers without
    // touching disk.
    uint64_t DiskHits = counter(*Svc, "cache.disk.hits");
    Svc->prover().checkOptimization(opts::constProp());
    EXPECT_GE(counter(*Svc, "cache.mem.hits"), 1u);
    EXPECT_EQ(counter(*Svc, "cache.disk.hits"), DiskHits);
  }

  // Service 2, same directory: fresh hot tier, so the disk tier answers
  // (and promotes into memory).
  {
    std::shared_ptr<CobaltService> Svc = makeService(Config);
    support::TelemetryScope Outer(Svc->telemetry());
    CheckRequest Req;
    Req.Only = {"const_prop"};
    CheckResponse R = Svc->check(Req);
    ASSERT_TRUE(R.ok());
    EXPECT_TRUE(R.Suite.Reports[0].CacheHit);
    EXPECT_GE(counter(*Svc, "cache.disk.hits"), 1u);
    EXPECT_EQ(counter(*Svc, "cache.mem.hits"), 0u);
  }
  fs::remove_all(Dir);
}

TEST(ServiceApi, PipelineRequestRoundTrip) {
  std::shared_ptr<CobaltService> Svc = makeService(CobaltConfig{});
  support::Expected<ir::Program> Prog = Svc->parseProgram(
      "proc main(n) {\n  x := 3;\n  y := x;\n  return y;\n}\n");
  ASSERT_TRUE(Prog.ok());

  PipelineRequest Req;
  Req.Prog = std::move(*Prog);
  PipelineResponse Resp = Svc->run(std::move(Req));
  ASSERT_TRUE(Resp.ok());
  EXPECT_FALSE(Resp.Result.Degraded);
  // Two registered passes over one procedure.
  EXPECT_EQ(Resp.Result.Reports.size(), 2u);
  // The transformed program came back out.
  EXPECT_FALSE(Resp.Prog.Procs.empty());
}

TEST(ServiceApi, ContextCompatDelegatesToService) {
  // The old facade still works and exposes its backing service.
  CobaltContext Ctx{CobaltConfig{}};
  for (const LabelDef &Def : opts::standardLabels())
    Ctx.defineLabel(Def);
  Ctx.addOptimization(opts::constProp());
  checker::CheckReport R = Ctx.check(opts::constProp());
  EXPECT_TRUE(R.Sound);
  api::SuiteResult Suite = Ctx.checkRegistered();
  EXPECT_TRUE(Suite.allSound());
  ASSERT_NE(Ctx.service(), nullptr);
  EXPECT_EQ(Ctx.service()->definitionCount(), 1u);
}

} // namespace
