//===- protocol_test.cpp - The cobaltd wire protocol ----------------------===//
//
// Part of the Cobalt reproduction (PLDI 2003). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON layer under the daemon: the minimal parser accepts what the
/// request builders emit (round-trip), preserves uint64 fault salts
/// exactly, decodes escapes, and rejects malformed documents with a
/// reason instead of misparsing them.
///
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <gtest/gtest.h>

#include <string>

using namespace cobalt;
using namespace cobalt::service;

namespace {

TEST(Protocol, PingRoundTrip) {
  std::optional<JsonValue> Doc = parseJson(makePingRequest());
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *Cmd = Doc->find("cmd");
  ASSERT_NE(Cmd, nullptr);
  EXPECT_EQ(Cmd->asString(), "ping");
}

TEST(Protocol, CheckRequestRoundTrip) {
  std::string Req = makeCheckRequest({"licm", "cse"}, /*Jobs=*/4,
                                     /*BudgetMs=*/250, /*FaultSalt=*/7);
  std::optional<JsonValue> Doc = parseJson(Req);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("cmd")->asString(), "check");
  EXPECT_EQ(Doc->stringList("only"),
            (std::vector<std::string>{"licm", "cse"}));
  EXPECT_EQ(Doc->find("jobs")->asI64(), 4);
  EXPECT_EQ(Doc->find("budget_ms")->asI64(), 250);
  EXPECT_EQ(Doc->find("fault_salt")->asU64(), 7u);
}

TEST(Protocol, CheckRequestOmitsDefaults) {
  // Default-valued members are omitted so absent == default holds on
  // both sides of the wire.
  std::string Req = makeCheckRequest({});
  std::optional<JsonValue> Doc = parseJson(Req);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("only"), nullptr);
  EXPECT_EQ(Doc->find("jobs"), nullptr);
  EXPECT_EQ(Doc->find("budget_ms"), nullptr);
  EXPECT_EQ(Doc->find("fault_salt"), nullptr);
}

TEST(Protocol, FullUint64SaltSurvives) {
  // A double-based parser would round this; ours must not.
  uint64_t Salt = 0xFFFFFFFFFFFFFFFFull;
  std::optional<JsonValue> Doc =
      parseJson(makeCheckRequest({}, 0, -1, Salt));
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("fault_salt")->asU64(), Salt);
}

TEST(Protocol, RunRequestRoundTrip) {
  std::string Program = "proc main(n) {\n  return n;\n}\n";
  std::optional<JsonValue> Doc =
      parseJson(makeRunRequest(Program, {"const_prop"},
                               /*SelectedOnly=*/true, /*Jobs=*/2));
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("cmd")->asString(), "run");
  EXPECT_EQ(Doc->find("program")->asString(), Program);
  EXPECT_EQ(Doc->stringList("selected"),
            (std::vector<std::string>{"const_prop"}));
  EXPECT_TRUE(Doc->find("selected_only")->asBool());
  EXPECT_EQ(Doc->find("jobs")->asI64(), 2);
}

TEST(Protocol, StringEscapes) {
  std::optional<JsonValue> Doc = parseJson(
      R"({"s": "tab\there \"quoted\" back\\slash Aé"})");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("s")->asString(),
            "tab\there \"quoted\" back\\slash A\xc3\xa9");
}

TEST(Protocol, NestedStructure) {
  std::optional<JsonValue> Doc = parseJson(
      R"({"a": [1, {"b": [true, false, null]}], "c": {"d": -12}})");
  ASSERT_TRUE(Doc.has_value());
  const JsonValue *A = Doc->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->Items.size(), 2u);
  EXPECT_EQ(A->Items[0].asI64(), 1);
  const JsonValue *B = A->Items[1].find("b");
  ASSERT_NE(B, nullptr);
  ASSERT_EQ(B->Items.size(), 3u);
  EXPECT_TRUE(B->Items[0].asBool());
  EXPECT_FALSE(B->Items[1].asBool(true));
  EXPECT_TRUE(B->Items[2].isNull());
  EXPECT_EQ(Doc->find("c")->find("d")->asI64(), -12);
}

TEST(Protocol, TypedAccessorDefaults) {
  std::optional<JsonValue> Doc =
      parseJson(R"({"s": "text", "n": 3, "b": true})");
  ASSERT_TRUE(Doc.has_value());
  // Mistyped lookups fall back to the caller's default.
  EXPECT_EQ(Doc->find("s")->asI64(42), 42);
  EXPECT_EQ(Doc->find("n")->asString("dflt"), "dflt");
  EXPECT_FALSE(Doc->find("n")->asBool(false));
  // Negative numbers read as uint64 fall back too.
  std::optional<JsonValue> Neg = parseJson(R"({"n": -5})");
  ASSERT_TRUE(Neg.has_value());
  EXPECT_EQ(Neg->find("n")->asU64(9), 9u);
  // stringList skips non-string items rather than inventing entries.
  std::optional<JsonValue> Mixed = parseJson(R"({"l": ["a", 1, "b"]})");
  ASSERT_TRUE(Mixed.has_value());
  EXPECT_EQ(Mixed->stringList("l"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Protocol, MalformedInputsRejected) {
  const char *Bad[] = {
      "",
      "{",
      "[1, 2",
      R"({"a": })",
      R"({"a" 1})",
      R"({'a': 1})",
      R"({"a": 1} trailing)",
      R"({"s": "\q"})",
      R"({"s": "\u12"})",
      "{\"s\": \"unterminated",
      "tru",
      "nul",
      "--3",
  };
  for (const char *Text : Bad) {
    std::string Err;
    EXPECT_FALSE(parseJson(Text, &Err).has_value()) << Text;
    EXPECT_FALSE(Err.empty()) << Text;
  }
}

TEST(Protocol, DepthBombRejected) {
  // A pathological frame must fail parsing, not smash the stack.
  std::string Deep;
  for (int I = 0; I < 500; ++I)
    Deep += '[';
  EXPECT_FALSE(parseJson(Deep).has_value());
}

TEST(Protocol, DuplicateKeysFirstWins) {
  std::optional<JsonValue> Doc = parseJson(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->find("a")->asI64(), 1);
}

} // namespace
