file(REMOVE_RECURSE
  "CMakeFiles/bench_debugging.dir/bench_debugging.cpp.o"
  "CMakeFiles/bench_debugging.dir/bench_debugging.cpp.o.d"
  "bench_debugging"
  "bench_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
