# Empty dependencies file for bench_debugging.
# This may be replaced when dependencies are built.
