# Empty compiler generated dependencies file for satisfy_consistency_test.
# This may be replaced when dependencies are built.
