file(REMOVE_RECURSE
  "CMakeFiles/satisfy_consistency_test.dir/satisfy_consistency_test.cpp.o"
  "CMakeFiles/satisfy_consistency_test.dir/satisfy_consistency_test.cpp.o.d"
  "satisfy_consistency_test"
  "satisfy_consistency_test.pdb"
  "satisfy_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satisfy_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
