# Empty dependencies file for optimization_test.
# This may be replaced when dependencies are built.
