file(REMOVE_RECURSE
  "CMakeFiles/optimization_test.dir/optimization_test.cpp.o"
  "CMakeFiles/optimization_test.dir/optimization_test.cpp.o.d"
  "optimization_test"
  "optimization_test.pdb"
  "optimization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
