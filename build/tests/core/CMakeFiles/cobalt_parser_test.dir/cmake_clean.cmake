file(REMOVE_RECURSE
  "CMakeFiles/cobalt_parser_test.dir/cobalt_parser_test.cpp.o"
  "CMakeFiles/cobalt_parser_test.dir/cobalt_parser_test.cpp.o.d"
  "cobalt_parser_test"
  "cobalt_parser_test.pdb"
  "cobalt_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
