# Empty dependencies file for cobalt_parser_test.
# This may be replaced when dependencies are built.
