# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/substitution_test[1]_include.cmake")
include("/root/repo/build/tests/core/match_test[1]_include.cmake")
include("/root/repo/build/tests/core/formula_test[1]_include.cmake")
include("/root/repo/build/tests/core/witness_test[1]_include.cmake")
include("/root/repo/build/tests/core/optimization_test[1]_include.cmake")
include("/root/repo/build/tests/core/cobalt_parser_test[1]_include.cmake")
include("/root/repo/build/tests/core/satisfy_consistency_test[1]_include.cmake")
