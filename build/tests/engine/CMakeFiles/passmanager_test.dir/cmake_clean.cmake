file(REMOVE_RECURSE
  "CMakeFiles/passmanager_test.dir/passmanager_test.cpp.o"
  "CMakeFiles/passmanager_test.dir/passmanager_test.cpp.o.d"
  "passmanager_test"
  "passmanager_test.pdb"
  "passmanager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passmanager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
