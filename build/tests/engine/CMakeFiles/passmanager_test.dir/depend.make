# Empty dependencies file for passmanager_test.
# This may be replaced when dependencies are built.
