# Empty dependencies file for guard_semantics_test.
# This may be replaced when dependencies are built.
