file(REMOVE_RECURSE
  "CMakeFiles/guard_semantics_test.dir/guard_semantics_test.cpp.o"
  "CMakeFiles/guard_semantics_test.dir/guard_semantics_test.cpp.o.d"
  "guard_semantics_test"
  "guard_semantics_test.pdb"
  "guard_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guard_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
