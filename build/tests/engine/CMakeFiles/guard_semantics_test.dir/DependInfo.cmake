
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/guard_semantics_test.cpp" "tests/engine/CMakeFiles/guard_semantics_test.dir/guard_semantics_test.cpp.o" "gcc" "tests/engine/CMakeFiles/guard_semantics_test.dir/guard_semantics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/cobalt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/opts/CMakeFiles/cobalt_opts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cobalt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cobalt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobalt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
