# CMake generated Testfile for 
# Source directory: /root/repo/tests/engine
# Build directory: /root/repo/build/tests/engine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/engine/engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine/guard_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/engine/passmanager_test[1]_include.cmake")
