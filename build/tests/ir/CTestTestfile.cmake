# CMake generated Testfile for 
# Source directory: /root/repo/tests/ir
# Build directory: /root/repo/build/tests/ir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir/ast_test[1]_include.cmake")
include("/root/repo/build/tests/ir/parser_test[1]_include.cmake")
include("/root/repo/build/tests/ir/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/ir/interp_test[1]_include.cmake")
include("/root/repo/build/tests/ir/generator_test[1]_include.cmake")
