# CMake generated Testfile for 
# Source directory: /root/repo/tests/checker
# Build directory: /root/repo/build/tests/checker
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/checker/encoder_test[1]_include.cmake")
include("/root/repo/build/tests/checker/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/checker/rejection_test[1]_include.cmake")
include("/root/repo/build/tests/checker/witness_inference_test[1]_include.cmake")
