file(REMOVE_RECURSE
  "CMakeFiles/witness_inference_test.dir/witness_inference_test.cpp.o"
  "CMakeFiles/witness_inference_test.dir/witness_inference_test.cpp.o.d"
  "witness_inference_test"
  "witness_inference_test.pdb"
  "witness_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
