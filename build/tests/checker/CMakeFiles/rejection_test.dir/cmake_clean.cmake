file(REMOVE_RECURSE
  "CMakeFiles/rejection_test.dir/rejection_test.cpp.o"
  "CMakeFiles/rejection_test.dir/rejection_test.cpp.o.d"
  "rejection_test"
  "rejection_test.pdb"
  "rejection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
