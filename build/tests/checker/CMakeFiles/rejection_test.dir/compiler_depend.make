# Empty compiler generated dependencies file for rejection_test.
# This may be replaced when dependencies are built.
