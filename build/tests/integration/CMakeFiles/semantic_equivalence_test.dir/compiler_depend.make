# Empty compiler generated dependencies file for semantic_equivalence_test.
# This may be replaced when dependencies are built.
