file(REMOVE_RECURSE
  "CMakeFiles/semantic_equivalence_test.dir/semantic_equivalence_test.cpp.o"
  "CMakeFiles/semantic_equivalence_test.dir/semantic_equivalence_test.cpp.o.d"
  "semantic_equivalence_test"
  "semantic_equivalence_test.pdb"
  "semantic_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
