file(REMOVE_RECURSE
  "CMakeFiles/witness_dynamic_test.dir/witness_dynamic_test.cpp.o"
  "CMakeFiles/witness_dynamic_test.dir/witness_dynamic_test.cpp.o.d"
  "witness_dynamic_test"
  "witness_dynamic_test.pdb"
  "witness_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
