# CMake generated Testfile for 
# Source directory: /root/repo/tests/opts
# Build directory: /root/repo/build/tests/opts
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/opts/labels_test[1]_include.cmake")
include("/root/repo/build/tests/opts/stdlib_text_test[1]_include.cmake")
