
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opts/stdlib_text_test.cpp" "tests/opts/CMakeFiles/stdlib_text_test.dir/stdlib_text_test.cpp.o" "gcc" "tests/opts/CMakeFiles/stdlib_text_test.dir/stdlib_text_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opts/CMakeFiles/cobalt_opts.dir/DependInfo.cmake"
  "/root/repo/build/src/checker/CMakeFiles/cobalt_checker.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cobalt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cobalt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobalt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
