file(REMOVE_RECURSE
  "CMakeFiles/stdlib_text_test.dir/stdlib_text_test.cpp.o"
  "CMakeFiles/stdlib_text_test.dir/stdlib_text_test.cpp.o.d"
  "stdlib_text_test"
  "stdlib_text_test.pdb"
  "stdlib_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stdlib_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
