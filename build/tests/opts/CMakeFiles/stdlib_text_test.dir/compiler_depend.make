# Empty compiler generated dependencies file for stdlib_text_test.
# This may be replaced when dependencies are built.
