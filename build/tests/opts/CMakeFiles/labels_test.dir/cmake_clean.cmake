file(REMOVE_RECURSE
  "CMakeFiles/labels_test.dir/labels_test.cpp.o"
  "CMakeFiles/labels_test.dir/labels_test.cpp.o.d"
  "labels_test"
  "labels_test.pdb"
  "labels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
