file(REMOVE_RECURSE
  "CMakeFiles/cobalt_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/cobalt_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/cobalt_support.dir/Lexer.cpp.o"
  "CMakeFiles/cobalt_support.dir/Lexer.cpp.o.d"
  "libcobalt_support.a"
  "libcobalt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
