file(REMOVE_RECURSE
  "libcobalt_support.a"
)
