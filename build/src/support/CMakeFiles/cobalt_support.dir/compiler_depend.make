# Empty compiler generated dependencies file for cobalt_support.
# This may be replaced when dependencies are built.
