
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Builder.cpp" "src/core/CMakeFiles/cobalt_core.dir/Builder.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/Builder.cpp.o.d"
  "/root/repo/src/core/CobaltParser.cpp" "src/core/CMakeFiles/cobalt_core.dir/CobaltParser.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/CobaltParser.cpp.o.d"
  "/root/repo/src/core/Formula.cpp" "src/core/CMakeFiles/cobalt_core.dir/Formula.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/Formula.cpp.o.d"
  "/root/repo/src/core/Match.cpp" "src/core/CMakeFiles/cobalt_core.dir/Match.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/Match.cpp.o.d"
  "/root/repo/src/core/Optimization.cpp" "src/core/CMakeFiles/cobalt_core.dir/Optimization.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/Optimization.cpp.o.d"
  "/root/repo/src/core/Substitution.cpp" "src/core/CMakeFiles/cobalt_core.dir/Substitution.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/Substitution.cpp.o.d"
  "/root/repo/src/core/Witness.cpp" "src/core/CMakeFiles/cobalt_core.dir/Witness.cpp.o" "gcc" "src/core/CMakeFiles/cobalt_core.dir/Witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cobalt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobalt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
