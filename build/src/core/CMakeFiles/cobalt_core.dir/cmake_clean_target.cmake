file(REMOVE_RECURSE
  "libcobalt_core.a"
)
