file(REMOVE_RECURSE
  "CMakeFiles/cobalt_core.dir/Builder.cpp.o"
  "CMakeFiles/cobalt_core.dir/Builder.cpp.o.d"
  "CMakeFiles/cobalt_core.dir/CobaltParser.cpp.o"
  "CMakeFiles/cobalt_core.dir/CobaltParser.cpp.o.d"
  "CMakeFiles/cobalt_core.dir/Formula.cpp.o"
  "CMakeFiles/cobalt_core.dir/Formula.cpp.o.d"
  "CMakeFiles/cobalt_core.dir/Match.cpp.o"
  "CMakeFiles/cobalt_core.dir/Match.cpp.o.d"
  "CMakeFiles/cobalt_core.dir/Optimization.cpp.o"
  "CMakeFiles/cobalt_core.dir/Optimization.cpp.o.d"
  "CMakeFiles/cobalt_core.dir/Substitution.cpp.o"
  "CMakeFiles/cobalt_core.dir/Substitution.cpp.o.d"
  "CMakeFiles/cobalt_core.dir/Witness.cpp.o"
  "CMakeFiles/cobalt_core.dir/Witness.cpp.o.d"
  "libcobalt_core.a"
  "libcobalt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
