# Empty dependencies file for cobalt_core.
# This may be replaced when dependencies are built.
