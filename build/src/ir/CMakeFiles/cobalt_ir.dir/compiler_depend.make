# Empty compiler generated dependencies file for cobalt_ir.
# This may be replaced when dependencies are built.
