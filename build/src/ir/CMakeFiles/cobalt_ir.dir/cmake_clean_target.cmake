file(REMOVE_RECURSE
  "libcobalt_ir.a"
)
