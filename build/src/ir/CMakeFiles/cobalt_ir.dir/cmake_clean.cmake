file(REMOVE_RECURSE
  "CMakeFiles/cobalt_ir.dir/Ast.cpp.o"
  "CMakeFiles/cobalt_ir.dir/Ast.cpp.o.d"
  "CMakeFiles/cobalt_ir.dir/Cfg.cpp.o"
  "CMakeFiles/cobalt_ir.dir/Cfg.cpp.o.d"
  "CMakeFiles/cobalt_ir.dir/Generator.cpp.o"
  "CMakeFiles/cobalt_ir.dir/Generator.cpp.o.d"
  "CMakeFiles/cobalt_ir.dir/Interp.cpp.o"
  "CMakeFiles/cobalt_ir.dir/Interp.cpp.o.d"
  "CMakeFiles/cobalt_ir.dir/Parser.cpp.o"
  "CMakeFiles/cobalt_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/cobalt_ir.dir/Printer.cpp.o"
  "CMakeFiles/cobalt_ir.dir/Printer.cpp.o.d"
  "libcobalt_ir.a"
  "libcobalt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
