file(REMOVE_RECURSE
  "libcobalt_opts.a"
)
