# Empty dependencies file for cobalt_opts.
# This may be replaced when dependencies are built.
