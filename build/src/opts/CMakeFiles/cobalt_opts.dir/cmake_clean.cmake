file(REMOVE_RECURSE
  "CMakeFiles/cobalt_opts.dir/Buggy.cpp.o"
  "CMakeFiles/cobalt_opts.dir/Buggy.cpp.o.d"
  "CMakeFiles/cobalt_opts.dir/Labels.cpp.o"
  "CMakeFiles/cobalt_opts.dir/Labels.cpp.o.d"
  "CMakeFiles/cobalt_opts.dir/Optimizations.cpp.o"
  "CMakeFiles/cobalt_opts.dir/Optimizations.cpp.o.d"
  "libcobalt_opts.a"
  "libcobalt_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
