file(REMOVE_RECURSE
  "CMakeFiles/cobalt_engine.dir/Dataflow.cpp.o"
  "CMakeFiles/cobalt_engine.dir/Dataflow.cpp.o.d"
  "CMakeFiles/cobalt_engine.dir/Engine.cpp.o"
  "CMakeFiles/cobalt_engine.dir/Engine.cpp.o.d"
  "CMakeFiles/cobalt_engine.dir/PassManager.cpp.o"
  "CMakeFiles/cobalt_engine.dir/PassManager.cpp.o.d"
  "libcobalt_engine.a"
  "libcobalt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
