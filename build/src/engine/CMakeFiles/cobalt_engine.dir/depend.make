# Empty dependencies file for cobalt_engine.
# This may be replaced when dependencies are built.
