file(REMOVE_RECURSE
  "libcobalt_engine.a"
)
