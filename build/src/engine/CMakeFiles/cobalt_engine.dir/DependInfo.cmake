
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/Dataflow.cpp" "src/engine/CMakeFiles/cobalt_engine.dir/Dataflow.cpp.o" "gcc" "src/engine/CMakeFiles/cobalt_engine.dir/Dataflow.cpp.o.d"
  "/root/repo/src/engine/Engine.cpp" "src/engine/CMakeFiles/cobalt_engine.dir/Engine.cpp.o" "gcc" "src/engine/CMakeFiles/cobalt_engine.dir/Engine.cpp.o.d"
  "/root/repo/src/engine/PassManager.cpp" "src/engine/CMakeFiles/cobalt_engine.dir/PassManager.cpp.o" "gcc" "src/engine/CMakeFiles/cobalt_engine.dir/PassManager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cobalt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cobalt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobalt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
