# Empty compiler generated dependencies file for cobalt_checker.
# This may be replaced when dependencies are built.
