file(REMOVE_RECURSE
  "CMakeFiles/cobalt_checker.dir/Encoder.cpp.o"
  "CMakeFiles/cobalt_checker.dir/Encoder.cpp.o.d"
  "CMakeFiles/cobalt_checker.dir/PatternEncoder.cpp.o"
  "CMakeFiles/cobalt_checker.dir/PatternEncoder.cpp.o.d"
  "CMakeFiles/cobalt_checker.dir/Soundness.cpp.o"
  "CMakeFiles/cobalt_checker.dir/Soundness.cpp.o.d"
  "CMakeFiles/cobalt_checker.dir/WitnessInference.cpp.o"
  "CMakeFiles/cobalt_checker.dir/WitnessInference.cpp.o.d"
  "libcobalt_checker.a"
  "libcobalt_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobalt_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
