file(REMOVE_RECURSE
  "libcobalt_checker.a"
)
