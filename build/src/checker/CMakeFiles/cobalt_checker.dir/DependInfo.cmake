
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/Encoder.cpp" "src/checker/CMakeFiles/cobalt_checker.dir/Encoder.cpp.o" "gcc" "src/checker/CMakeFiles/cobalt_checker.dir/Encoder.cpp.o.d"
  "/root/repo/src/checker/PatternEncoder.cpp" "src/checker/CMakeFiles/cobalt_checker.dir/PatternEncoder.cpp.o" "gcc" "src/checker/CMakeFiles/cobalt_checker.dir/PatternEncoder.cpp.o.d"
  "/root/repo/src/checker/Soundness.cpp" "src/checker/CMakeFiles/cobalt_checker.dir/Soundness.cpp.o" "gcc" "src/checker/CMakeFiles/cobalt_checker.dir/Soundness.cpp.o.d"
  "/root/repo/src/checker/WitnessInference.cpp" "src/checker/CMakeFiles/cobalt_checker.dir/WitnessInference.cpp.o" "gcc" "src/checker/CMakeFiles/cobalt_checker.dir/WitnessInference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cobalt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cobalt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cobalt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
