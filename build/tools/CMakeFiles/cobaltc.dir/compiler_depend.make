# Empty compiler generated dependencies file for cobaltc.
# This may be replaced when dependencies are built.
