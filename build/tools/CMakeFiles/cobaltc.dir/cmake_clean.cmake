file(REMOVE_RECURSE
  "CMakeFiles/cobaltc.dir/cobaltc.cpp.o"
  "CMakeFiles/cobaltc.dir/cobaltc.cpp.o.d"
  "cobaltc"
  "cobaltc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobaltc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
