file(REMOVE_RECURSE
  "CMakeFiles/debugging_cse.dir/debugging_cse.cpp.o"
  "CMakeFiles/debugging_cse.dir/debugging_cse.cpp.o.d"
  "debugging_cse"
  "debugging_cse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debugging_cse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
