# Empty dependencies file for debugging_cse.
# This may be replaced when dependencies are built.
