file(REMOVE_RECURSE
  "CMakeFiles/pointer_analysis.dir/pointer_analysis.cpp.o"
  "CMakeFiles/pointer_analysis.dir/pointer_analysis.cpp.o.d"
  "pointer_analysis"
  "pointer_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
