# Empty compiler generated dependencies file for licm.
# This may be replaced when dependencies are built.
