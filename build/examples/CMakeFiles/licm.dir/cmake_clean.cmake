file(REMOVE_RECURSE
  "CMakeFiles/licm.dir/licm.cpp.o"
  "CMakeFiles/licm.dir/licm.cpp.o.d"
  "licm"
  "licm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/licm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
