# Empty compiler generated dependencies file for pre_pipeline.
# This may be replaced when dependencies are built.
