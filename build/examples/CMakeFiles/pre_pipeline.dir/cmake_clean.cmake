file(REMOVE_RECURSE
  "CMakeFiles/pre_pipeline.dir/pre_pipeline.cpp.o"
  "CMakeFiles/pre_pipeline.dir/pre_pipeline.cpp.o.d"
  "pre_pipeline"
  "pre_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pre_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
