# Empty compiler generated dependencies file for extensible_compiler.
# This may be replaced when dependencies are built.
