file(REMOVE_RECURSE
  "CMakeFiles/extensible_compiler.dir/extensible_compiler.cpp.o"
  "CMakeFiles/extensible_compiler.dir/extensible_compiler.cpp.o.d"
  "extensible_compiler"
  "extensible_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensible_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
